//! Product-state model checking over the extracted FSM tables.
//!
//! The [`fsm`](crate::fsm) pass checks each `match self.state` machine
//! in isolation; this pass composes every extracted table into one
//! explicit cross-product automaton (DiskState × WnicState ×
//! ServerPathState on the real tree) under interleaving semantics —
//! one component moves per step, matching how the simulator serialises
//! `device_state`/`server_path` events — and checks the temporal
//! properties the paper's energy argument rests on:
//!
//! * **product-deadlock** — no reachable product state may strand the
//!   whole system (every component simultaneously without a non-self
//!   exit);
//! * **product-unreachable** — no emergent dead tuple: a combination of
//!   individually-reachable component states the product can never
//!   enter (possible only under synchronised semantics, checked so a
//!   future synchronisation does not rot silently);
//! * **no-recovery** — every degraded server-path state must have a
//!   path back to the healthy state;
//! * **powered-exit** — a powered-off component state (disk `Standby`,
//!   WNIC `Psm`) may only be left through its documented power-up
//!   transition, so no energy-accruing edge escapes a powered-off
//!   state;
//! * **unclamped-backoff / unbounded-ladder** — retry backoff
//!   arithmetic must be clamped (`<<` under a `.min(…)`) and ladder
//!   walks must be bounded loops.
//!
//! Besides findings, the pass exports the explored [`ProductGraph`] so
//! the CLI can write `results/fsm-product.json` and the conformance
//! pass can report coverage against the same model.

use crate::fsm::FsmTable;
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use ff_base::json::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Product exploration is capped well above the real tree's 60 states;
/// a pathological fixture beyond the cap is reported as capped instead
/// of exploding.
const STATE_CAP: u64 = 250_000;

/// The event alphabet the product automaton is observed through — the
/// `ev` kinds `ff-sim::record` serialises for state changes.
pub const EVENT_ALPHABET: [&str; 3] = ["device_state", "device_transition", "server_path"];

/// Degraded component states that must be able to recover: for each
/// enum, the states the fault layer can enter and the healthy state a
/// path must lead back to.
const DEGRADED: [(&str, &[&str], &str); 1] =
    [("ServerPathState", &["Down", "MarkedDead"], "Healthy")];

/// Powered-off component states and the only transition target allowed
/// to leave them (the power-up edge). Any other exit would accrue
/// energy out of a state the model bills as off.
const POWERED_OFF: [(&str, &str, &str); 2] = [
    ("DiskState", "Standby", "SpinningUp"),
    ("WnicState", "Psm", "ToCam"),
];

/// One degraded-state recovery verdict, kept for the exported graph.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Component enum name.
    pub component: String,
    /// The degraded state.
    pub state: String,
    /// The healthy state a path must reach.
    pub healthy: String,
    /// Whether such a path exists.
    pub recovers: bool,
}

/// The explored cross-product automaton, exported as
/// `results/fsm-product.json` and summarised in the JSON report.
#[derive(Debug, Clone, Default)]
pub struct ProductGraph {
    /// The component tables composed into the product.
    pub components: Vec<FsmTable>,
    /// Total product states (cartesian size).
    pub states: u64,
    /// States reachable from the initial set.
    pub reachable: u64,
    /// Distinct product transitions out of reachable states.
    pub transitions: u64,
    /// True when the cartesian size exceeded the exploration cap.
    pub capped: bool,
    /// Recovery verdicts for the degraded states.
    pub recoveries: Vec<Recovery>,
}

impl ProductGraph {
    /// The compact `product` node of the JSON report: exploration
    /// stats and recovery verdicts (the component tables are already
    /// in the report's `fsm` array).
    pub fn summary_json_value(&self) -> Value {
        let recovery = |r: &Recovery| {
            Value::Object(vec![
                ("component".into(), Value::Str(r.component.clone())),
                ("state".into(), Value::Str(r.state.clone())),
                ("healthy".into(), Value::Str(r.healthy.clone())),
                ("recovers".into(), Value::Bool(r.recovers)),
            ])
        };
        Value::Object(vec![
            ("states".into(), Value::UInt(self.states)),
            ("reachable".into(), Value::UInt(self.reachable)),
            ("transitions".into(), Value::UInt(self.transitions)),
            ("capped".into(), Value::Bool(self.capped)),
            (
                "recoveries".into(),
                Value::Array(self.recoveries.iter().map(recovery).collect()),
            ),
        ])
    }

    /// The exported JSON document (components, alphabet, exploration
    /// stats, recovery verdicts). Deterministic field order.
    pub fn to_json_value(&self) -> Value {
        let table = |t: &FsmTable| {
            Value::Object(vec![
                ("file".into(), Value::Str(t.file.clone())),
                ("enum".into(), Value::Str(t.enum_name.clone())),
                (
                    "states".into(),
                    Value::Array(t.states.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
                (
                    "initial".into(),
                    Value::Array(t.initial.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
                (
                    "transitions".into(),
                    Value::Array(
                        t.transitions
                            .iter()
                            .map(|tr| {
                                Value::Object(vec![
                                    ("from".into(), Value::Str(tr.from.clone())),
                                    ("to".into(), Value::Str(tr.to.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let recovery = |r: &Recovery| {
            Value::Object(vec![
                ("component".into(), Value::Str(r.component.clone())),
                ("state".into(), Value::Str(r.state.clone())),
                ("healthy".into(), Value::Str(r.healthy.clone())),
                ("recovers".into(), Value::Bool(r.recovers)),
            ])
        };
        Value::Object(vec![
            (
                "alphabet".into(),
                Value::Array(
                    EVENT_ALPHABET
                        .iter()
                        .map(|s| Value::Str((*s).into()))
                        .collect(),
                ),
            ),
            (
                "components".into(),
                Value::Array(self.components.iter().map(table).collect()),
            ),
            (
                "product".into(),
                Value::Object(vec![
                    ("states".into(), Value::UInt(self.states)),
                    ("reachable".into(), Value::UInt(self.reachable)),
                    ("transitions".into(), Value::UInt(self.transitions)),
                    ("capped".into(), Value::Bool(self.capped)),
                ]),
            ),
            (
                "recoveries".into(),
                Value::Array(self.recoveries.iter().map(recovery).collect()),
            ),
        ])
    }
}

/// Per-component view used during exploration: state names resolved to
/// indices, adjacency as index pairs.
struct Component {
    states: Vec<String>,
    /// Outgoing edges per state index (deduped, sorted).
    edges: Vec<Vec<usize>>,
    initial: Vec<usize>,
}

impl Component {
    fn from_table(t: &FsmTable) -> Component {
        let index: BTreeMap<&str, usize> = t
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        let mut edges = vec![BTreeSet::new(); t.states.len()];
        for tr in &t.transitions {
            if let (Some(&f), Some(&to)) = (index.get(tr.from.as_str()), index.get(tr.to.as_str()))
            {
                edges[f].insert(to);
            }
        }
        let mut initial: Vec<usize> = t
            .initial
            .iter()
            .filter_map(|s| index.get(s.as_str()).copied())
            .collect();
        // A table without a recognised initial state (struct literal not
        // found) starts anywhere: assume every state initial rather
        // than silently proving properties of an empty reachable set.
        if initial.is_empty() {
            initial = (0..t.states.len()).collect();
        }
        Component {
            states: t.states.clone(),
            edges: edges.into_iter().map(|s| s.into_iter().collect()).collect(),
            initial,
        }
    }

    /// Can `to` be reached from `from` along component edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.states.len()];
        let mut queue = VecDeque::from([from]);
        seen[from] = true;
        while let Some(s) = queue.pop_front() {
            if s == to {
                return true;
            }
            for &n in &self.edges[s] {
                if !seen[n] {
                    seen[n] = true;
                    queue.push_back(n);
                }
            }
        }
        false
    }

    /// Does the state have any exit besides a self-loop?
    fn has_exit(&self, s: usize) -> bool {
        self.edges[s].iter().any(|&n| n != s)
    }
}

/// Render a product tuple as `Idle×Psm×Healthy`.
fn render(components: &[Component], tuple: &[usize]) -> String {
    tuple
        .iter()
        .zip(components)
        .map(|(&s, c)| c.states[s].clone())
        .collect::<Vec<_>>()
        .join("\u{d7}")
}

/// Compose the tables, explore the product, and check the temporal
/// properties. Returns the explored graph (for export) and findings.
pub fn analyze(sources: &[SourceFile], tables: &[FsmTable]) -> (ProductGraph, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut graph = ProductGraph {
        components: tables.to_vec(),
        ..ProductGraph::default()
    };

    let components: Vec<Component> = tables.iter().map(Component::from_table).collect();
    let total: u64 = components
        .iter()
        .map(|c| c.states.len() as u64)
        .try_fold(1u64, u64::checked_mul)
        .unwrap_or(u64::MAX);
    graph.states = if components.is_empty() { 0 } else { total };

    if !components.is_empty() && total <= STATE_CAP {
        explore(tables, &components, &mut graph, &mut findings);
    } else if total > STATE_CAP {
        graph.capped = true;
    }

    degraded_recovery(tables, &components, &mut graph, &mut findings);
    powered_exits(tables, &mut findings);
    backoff_bounds(sources, &mut findings);

    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.token).cmp(&(b.rule, &b.file, b.line, &b.token))
    });
    (graph, findings)
}

/// BFS over the product from the cartesian initial set; record stats
/// and report deadlocked or emergent-unreachable product states.
fn explore(
    tables: &[FsmTable],
    components: &[Component],
    graph: &mut ProductGraph,
    findings: &mut Vec<Finding>,
) {
    let mut initial: Vec<Vec<usize>> = vec![Vec::new()];
    for c in components {
        let mut next = Vec::new();
        for prefix in &initial {
            for &s in &c.initial {
                let mut tuple = prefix.clone();
                tuple.push(s);
                next.push(tuple);
            }
        }
        initial = next;
    }

    let mut reached: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<usize>> = VecDeque::new();
    for tuple in initial {
        if reached.insert(tuple.clone()) {
            queue.push_back(tuple);
        }
    }
    let mut edges: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    while let Some(tuple) = queue.pop_front() {
        for (i, c) in components.iter().enumerate() {
            for &n in &c.edges[tuple[i]] {
                let mut next = tuple.clone();
                next[i] = n;
                edges.insert((tuple.clone(), next.clone()));
                if reached.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    graph.reachable = reached.len() as u64;
    graph.transitions = edges.len() as u64;

    // Property checks on the explored set. Deadlock needs the product
    // view (>= 2 components): a single machine's stuck states are the
    // per-machine fsm family's verdict, not this one's.
    let anchor_file = tables.first().map(|t| t.file.clone()).unwrap_or_default();
    if components.len() >= 2 {
        for tuple in &reached {
            let stuck = tuple.iter().zip(components).all(|(&s, c)| !c.has_exit(s));
            if stuck {
                findings.push(Finding {
                    rule: Rule::ProductFsm,
                    file: anchor_file.clone(),
                    line: 0,
                    token: format!("deadlock:{}", render(components, tuple)),
                    message: "reachable product state with no non-self exit in any component"
                        .to_owned(),
                });
            }
        }
        // Emergent unreachability: tuples of individually-reached
        // component states the product never enters.
        let projections: Vec<BTreeSet<usize>> = (0..components.len())
            .map(|i| reached.iter().map(|t| t[i]).collect())
            .collect();
        let mut tuples: Vec<Vec<usize>> = vec![Vec::new()];
        for proj in &projections {
            let mut next = Vec::new();
            for prefix in &tuples {
                for &s in proj {
                    let mut tuple = prefix.clone();
                    tuple.push(s);
                    next.push(tuple);
                }
            }
            tuples = next;
        }
        for tuple in tuples {
            if !reached.contains(&tuple) {
                findings.push(Finding {
                    rule: Rule::ProductFsm,
                    file: anchor_file.clone(),
                    line: 0,
                    token: format!("unreachable:{}", render(components, &tuple)),
                    message: "product state of individually-reachable component states is \
                              never entered"
                        .to_owned(),
                });
            }
        }
    }
}

/// Every degraded state of a registered component must reach its
/// healthy state along component edges.
fn degraded_recovery(
    tables: &[FsmTable],
    components: &[Component],
    graph: &mut ProductGraph,
    findings: &mut Vec<Finding>,
) {
    for (ti, table) in tables.iter().enumerate() {
        let Some(&(_, degraded, healthy)) = DEGRADED
            .iter()
            .find(|(name, _, _)| *name == table.enum_name)
        else {
            continue;
        };
        let c = &components[ti];
        let Some(hi) = c.states.iter().position(|s| s == healthy) else {
            continue;
        };
        for name in degraded {
            let Some(di) = c.states.iter().position(|s| s == *name) else {
                continue;
            };
            let recovers = c.reaches(di, hi);
            graph.recoveries.push(Recovery {
                component: table.enum_name.clone(),
                state: (*name).to_owned(),
                healthy: healthy.to_owned(),
                recovers,
            });
            if !recovers {
                findings.push(Finding {
                    rule: Rule::ProductFsm,
                    file: table.file.clone(),
                    line: 0,
                    token: format!("no-recovery:{}::{name}", table.enum_name),
                    message: format!(
                        "degraded state {name} has no path back to {healthy}; a fault would \
                         strand the server path"
                    ),
                });
            }
        }
    }
}

/// Powered-off states may only be left through their power-up edge.
fn powered_exits(tables: &[FsmTable], findings: &mut Vec<Finding>) {
    for table in tables {
        for &(enum_name, off, power_up) in &POWERED_OFF {
            if table.enum_name != enum_name {
                continue;
            }
            for tr in &table.transitions {
                if tr.from == off && tr.to != off && tr.to != power_up {
                    findings.push(Finding {
                        rule: Rule::ProductFsm,
                        file: table.file.clone(),
                        line: tr.line,
                        token: format!("powered-exit:{enum_name}::{off}->{}", tr.to),
                        message: format!(
                            "transition leaves powered-off state {off} without passing through \
                             {power_up}; energy would accrue out of an off state"
                        ),
                    });
                }
            }
        }
    }
}

/// Backoff arithmetic must be clamped and ladder walks bounded.
fn backoff_bounds(sources: &[SourceFile], findings: &mut Vec<Finding>) {
    for file in sources {
        if file.kind != FileKind::Lib || file.crate_name != "ff-sim" {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || !line.code.contains("backoff") {
                continue;
            }
            if line.code.contains("<<") && !line.code.contains(".min(") {
                findings.push(Finding {
                    rule: Rule::ProductFsm,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: "unclamped-backoff".to_owned(),
                    message: "exponential backoff shift without a .min(…) clamp can overflow \
                              and unbound the ladder"
                        .to_owned(),
                });
            }
            let t = line.code.trim_start();
            if t.starts_with("while ") || t.starts_with("loop ") || t.starts_with("loop{") {
                findings.push(Finding {
                    rule: Rule::ProductFsm,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: "unbounded-ladder".to_owned(),
                    message: "backoff ladder walked in an open loop; use a bounded range over \
                              max_retries"
                        .to_owned(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{FsmTable, Transition};

    fn table(
        enum_name: &str,
        states: &[&str],
        initial: &[&str],
        edges: &[(&str, &str)],
    ) -> FsmTable {
        FsmTable {
            file: format!("crates/x/src/{}.rs", enum_name.to_lowercase()),
            enum_name: enum_name.to_owned(),
            states: states.iter().map(|s| (*s).to_owned()).collect(),
            initial: initial.iter().map(|s| (*s).to_owned()).collect(),
            transitions: edges
                .iter()
                .enumerate()
                .map(|(i, (f, t))| Transition {
                    from: (*f).to_owned(),
                    to: (*t).to_owned(),
                    line: i + 1,
                })
                .collect(),
        }
    }

    fn server(edges: &[(&str, &str)]) -> FsmTable {
        table(
            "ServerPathState",
            &["Healthy", "Down", "MarkedDead"],
            &["Healthy"],
            edges,
        )
    }

    #[test]
    fn healthy_server_path_recovers_and_is_clean() {
        let t = server(&[
            ("Healthy", "Down"),
            ("Down", "Healthy"),
            ("Down", "MarkedDead"),
            ("MarkedDead", "Healthy"),
        ]);
        let (graph, findings) = analyze(&[], &[t]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph.recoveries.iter().all(|r| r.recovers));
        assert_eq!(graph.states, 3);
        assert_eq!(graph.reachable, 3);
    }

    #[test]
    fn missing_recovery_edge_is_reported() {
        let t = server(&[
            ("Healthy", "Down"),
            ("Down", "Healthy"),
            ("Down", "MarkedDead"),
            ("MarkedDead", "MarkedDead"),
        ]);
        let (graph, findings) = analyze(&[], &[t]);
        assert!(
            findings
                .iter()
                .any(|f| f.token == "no-recovery:ServerPathState::MarkedDead"),
            "{findings:?}"
        );
        assert!(graph.recoveries.iter().any(|r| !r.recovers));
    }

    #[test]
    fn product_of_healthy_machines_is_fully_reachable() {
        let disk = table(
            "CacheState",
            &["Idle", "Standby"],
            &["Idle"],
            &[("Idle", "Standby"), ("Standby", "Idle")],
        );
        let wnic = table(
            "LinkState",
            &["Cam", "Psm"],
            &["Cam"],
            &[("Cam", "Psm"), ("Psm", "Cam")],
        );
        let (graph, findings) = analyze(&[], &[disk, wnic]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(graph.states, 4);
        assert_eq!(graph.reachable, 4);
        assert!(!graph.capped);
    }

    #[test]
    fn simultaneous_deadlock_is_reported() {
        // Both machines can step into a sink state; the product state
        // (SinkA, SinkB) strands the whole system.
        let a = table("A", &["Run", "SinkA"], &["Run"], &[("Run", "SinkA")]);
        let b = table("B", &["Run", "SinkB"], &["Run"], &[("Run", "SinkB")]);
        let (_, findings) = analyze(&[], &[a, b]);
        assert!(
            findings
                .iter()
                .any(|f| f.token == "deadlock:SinkA\u{d7}SinkB"),
            "{findings:?}"
        );
    }

    #[test]
    fn powered_off_exit_must_be_the_power_up_edge() {
        let disk = table(
            "DiskState",
            &["Idle", "Standby", "SpinningUp"],
            &["Idle"],
            &[
                ("Idle", "Standby"),
                ("Standby", "SpinningUp"),
                ("Standby", "Idle"),
                ("SpinningUp", "Idle"),
            ],
        );
        let (_, findings) = analyze(&[], &[disk]);
        assert!(
            findings
                .iter()
                .any(|f| f.token == "powered-exit:DiskState::Standby->Idle"),
            "{findings:?}"
        );
    }

    #[test]
    fn exported_graph_serialises_with_alphabet() {
        let t = server(&[("Healthy", "Down"), ("Down", "Healthy")]);
        let (graph, _) = analyze(&[], &[t]);
        let json = graph.to_json_value().to_pretty();
        assert!(json.contains("server_path"), "{json}");
        assert!(json.contains("ServerPathState"), "{json}");
    }
}
