//! Interprocedural unit/dimension flow analysis.
//!
//! The intra-procedural [`crate::units`] pass stops at two boundaries:
//! it knows nothing about what a *call* returns, and it can only check
//! arguments of callees that resolve uniquely by bare name. This pass
//! closes both gaps using the same graded name resolution as the
//! [`crate::callgraph`]:
//!
//! * every `fn` gets a **summary** — parameter dimensions from the
//!   suffix convention, and a return dimension from the fn's own name
//!   suffix (`fn beacon_interval_ms()`) or, via a small fixpoint, from
//!   the dimensions its `return`/tail expressions carry;
//! * call results then flow through `let` bindings, so an `_ms` value
//!   produced two crates away and passed to a `_us` parameter is caught
//!   even though no identifier at the call site spells a unit;
//! * the dimension lattice is wider than time: `_j`/`_joules` (energy)
//!   and `_bytes` (size) are tracked too, so adding joules to
//!   microseconds is a finding even though both sides are "units" the
//!   old pass cannot compare.
//!
//! Findings are emitted under the `unit-flow-interproc` family and are
//! deliberately disjoint from `unit-flow`: a mismatch is only reported
//! here when at least one side's dimension came through a call boundary
//! or when the two sides live in different dimensions — anything the
//! intra-procedural pass can already see stays in its family.

use crate::callgraph::{call_sites, STD_COLLIDING_METHODS};
use crate::items::{split_args, ItemKind, ItemTree};
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::units::{self, Unit};
use std::collections::{BTreeMap, BTreeSet};

/// A physical dimension recovered from suffixes, accessors, or call
/// summaries. Time keeps its scale; rescaling between dimensions is
/// never implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dim {
    /// A time quantity at a specific scale.
    Time(Unit),
    /// Energy in joules (`_j` / `_joules`).
    Joules,
    /// A byte count (`_bytes`).
    Bytes,
}

impl Dim {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Dim::Time(u) => u.label(),
            Dim::Joules => "j",
            Dim::Bytes => "bytes",
        }
    }

    /// Dimension implied by an identifier's suffix.
    pub(crate) fn of_ident(name: &str) -> Option<Dim> {
        if let Some(u) = Unit::of_ident(name) {
            return Some(Dim::Time(u));
        }
        for (suffix, dim) in [
            ("_j", Dim::Joules),
            ("_joules", Dim::Joules),
            ("_bytes", Dim::Bytes),
        ] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if !stem.is_empty() {
                    return Some(dim);
                }
            }
        }
        None
    }

    fn is_time(self) -> bool {
        matches!(self, Dim::Time(_))
    }
}

/// A dimension fact plus its provenance: `interproc` is true when the
/// fact crossed a function boundary (a call's return value), which is
/// what licenses reporting in this family rather than `unit-flow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    dim: Dim,
    interproc: bool,
}

impl Fact {
    fn local(dim: Dim) -> Fact {
        Fact {
            dim,
            interproc: false,
        }
    }
}

/// Per-fn environment: variable name → dimension fact.
type Env = BTreeMap<String, Fact>;

/// Summary of one workspace fn.
#[derive(Debug)]
struct FnInfo {
    /// Index of the defining file in `sources`.
    file: usize,
    /// Index of the item in its tree's arena.
    item: usize,
    /// Simple name.
    name: String,
    /// Enclosing impl/trait type, when a method.
    owner: Option<String>,
    /// Parameter dimensions from the suffix convention (self excluded).
    param_dims: Vec<Option<Dim>>,
    /// Return dimension, from the fn-name suffix or flow inference.
    ret: Option<Dim>,
}

/// All summaries plus the indices used for graded call resolution.
struct Summaries {
    fns: Vec<FnInfo>,
    /// Bare name → free-fn summary indices.
    free: BTreeMap<String, Vec<usize>>,
    /// Method name → summary indices (any owner).
    methods: BTreeMap<String, Vec<usize>>,
    /// `Owner::name` → summary indices.
    qualified: BTreeMap<String, Vec<usize>>,
}

impl Summaries {
    /// Candidates for a call site, by the strongest cue available.
    fn candidates(
        &self,
        site_name: &str,
        qualifier: Option<&str>,
        method: bool,
        on_self: bool,
        self_ty: Option<&str>,
    ) -> Vec<&FnInfo> {
        let idxs: &[usize] = if method && on_self {
            match self_ty.and_then(|t| self.qualified.get(&format!("{t}::{site_name}"))) {
                Some(v) => v,
                None => return Vec::new(),
            }
        } else if method {
            match self.methods.get(site_name) {
                Some(v) => v,
                None => return Vec::new(),
            }
        } else if let Some(q) = qualifier {
            let owner = if q == "Self" { self_ty.unwrap_or(q) } else { q };
            if owner.starts_with(char::is_uppercase) {
                match self.qualified.get(&format!("{owner}::{site_name}")) {
                    Some(v) => v,
                    None => return Vec::new(),
                }
            } else {
                // `module::fn` — the module path does not change which
                // free fn is meant.
                match self.free.get(site_name) {
                    Some(v) => v,
                    None => return Vec::new(),
                }
            }
        } else {
            match self.free.get(site_name) {
                Some(v) => v,
                None => return Vec::new(),
            }
        };
        idxs.iter().map(|&i| &self.fns[i]).collect()
    }

    /// The agreed return dimension of a call, if every candidate
    /// signature carries the same one.
    fn ret_of(
        &self,
        site_name: &str,
        qualifier: Option<&str>,
        method: bool,
        on_self: bool,
        self_ty: Option<&str>,
    ) -> Option<Dim> {
        if method && STD_COLLIDING_METHODS.contains(&site_name) {
            return None;
        }
        let cands = self.candidates(site_name, qualifier, method, on_self, self_ty);
        let first = cands.first()?.ret?;
        cands.iter().all(|c| c.ret == Some(first)).then_some(first)
    }
}

/// Run the interprocedural pass over every first-party library file.
pub fn analyze(sources: &[SourceFile], trees: &[ItemTree]) -> Vec<Finding> {
    let summaries = build_summaries(sources, trees);
    // Callees the intra-procedural pass already checks (unique bare
    // name, at least one time-suffixed param): their all-local,
    // time-on-time argument mismatches belong to `unit-flow`.
    let old_covered: BTreeSet<String> = units::collect_params(sources, trees).into_keys().collect();

    let mut out = Vec::new();
    for (fi, file) in sources.iter().enumerate() {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (ii, item) in trees[fi].fns() {
            if item.in_test || item.body_start == 0 {
                continue;
            }
            let ck = Checker {
                summaries: &summaries,
                old_covered: &old_covered,
                self_ty: owner_of(&trees[fi], ii),
                file: &file.rel_path,
                fn_name: &item.name,
                ret_decl: Dim::of_ident(&item.name),
            };
            let mut env = Env::new();
            for p in &item.params {
                if let Some(d) = Dim::of_ident(p) {
                    env.insert(p.clone(), Fact::local(d));
                }
            }
            // Last substantive line of the body: the tail-expression
            // candidate, so `fn f_us() { g_ms() }` is checked like an
            // explicit `return`.
            let tail_line = (item.body_start..=item.body_end).rev().find(|&n| {
                file.lines.get(n - 1).is_some_and(|l| {
                    let t = l.code.trim();
                    !t.is_empty() && t.chars().any(|c| c != '{' && c != '}')
                })
            });
            for line_no in item.body_start..=item.body_end {
                let Some(line) = file.lines.get(line_no - 1) else {
                    continue;
                };
                if line.in_test {
                    continue;
                }
                let code = &line.code;
                ck.check_additive(code, &env, line_no, &mut out);
                ck.check_calls(code, &env, line_no, &mut out);
                ck.check_return(code, &env, line_no, tail_line == Some(line_no), &mut out);
                ck.bind_let(code, &mut env, line_no, &mut out);
            }
        }
    }
    out
}

/// Enclosing impl/trait type name of the item at `idx`, if any.
fn owner_of(tree: &ItemTree, idx: usize) -> Option<&str> {
    let item = &tree.items[idx];
    let parent = &tree.items[item.parent?];
    matches!(parent.kind, ItemKind::Impl | ItemKind::Trait).then_some(parent.name.as_str())
}

/// Build fn summaries, then run a short fixpoint to infer return
/// dimensions from function bodies (two rounds reach anything a
/// two-deep helper chain can produce).
fn build_summaries(sources: &[SourceFile], trees: &[ItemTree]) -> Summaries {
    let mut fns = Vec::new();
    for (fi, tree) in trees.iter().enumerate() {
        if sources[fi].kind != FileKind::Lib {
            continue;
        }
        for (ii, item) in tree.fns() {
            if item.in_test {
                continue;
            }
            fns.push(FnInfo {
                file: fi,
                item: ii,
                name: item.name.clone(),
                owner: owner_of(tree, ii).map(str::to_owned),
                param_dims: item.params.iter().map(|p| Dim::of_ident(p)).collect(),
                ret: Dim::of_ident(&item.name),
            });
        }
    }
    let mut free = BTreeMap::new();
    let mut methods = BTreeMap::new();
    let mut qualified = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        match &f.owner {
            Some(owner) => {
                methods
                    .entry(f.name.clone())
                    .or_insert_with(Vec::new)
                    .push(i);
                qualified
                    .entry(format!("{owner}::{}", f.name))
                    .or_insert_with(Vec::new)
                    .push(i);
            }
            None => free.entry(f.name.clone()).or_insert_with(Vec::new).push(i),
        }
    }
    let mut summaries = Summaries {
        fns,
        free,
        methods,
        qualified,
    };

    for _round in 0..2 {
        let mut inferred: Vec<(usize, Dim)> = Vec::new();
        for (i, info) in summaries.fns.iter().enumerate() {
            if info.ret.is_some() {
                continue;
            }
            let tree = &trees[info.file];
            let item = &tree.items[info.item];
            if item.body_start == 0 {
                continue;
            }
            let self_ty = owner_of(tree, info.item).map(str::to_owned);
            if let Some(dim) = infer_ret(
                &sources[info.file],
                item.body_start,
                item.body_end,
                &item.params,
                &summaries,
                self_ty.as_deref(),
            ) {
                inferred.push((i, dim));
            }
        }
        if inferred.is_empty() {
            break;
        }
        for (i, dim) in inferred {
            summaries.fns[i].ret = Some(dim);
        }
    }
    summaries
}

/// Infer a fn's return dimension from its `return` statements and tail
/// expression, given the current summaries. All observed return sites
/// must agree on one dimension.
fn infer_ret(
    file: &SourceFile,
    body_start: usize,
    body_end: usize,
    params: &[String],
    summaries: &Summaries,
    self_ty: Option<&str>,
) -> Option<Dim> {
    let mut env = Env::new();
    for p in params {
        if let Some(d) = Dim::of_ident(p) {
            env.insert(p.clone(), Fact::local(d));
        }
    }
    let mut found: Option<Dim> = None;
    let mut agree = true;
    let mut observe = |fact: Option<Fact>| {
        if let Some(f) = fact {
            match found {
                None => found = Some(f.dim),
                Some(d) if d == f.dim => {}
                Some(_) => agree = false,
            }
        }
    };
    for line_no in body_start..=body_end {
        let Some(line) = file.lines.get(line_no - 1) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if let Some(expr) = code.strip_prefix("return ") {
            observe(expr_fact(
                expr.trim_end_matches(';'),
                &env,
                summaries,
                self_ty,
            ));
        } else if line_no < body_end && is_tail_expr(file, line_no, body_end) {
            observe(expr_fact(code, &env, summaries, self_ty));
        }
        bind_let_quiet(&line.code, &mut env, summaries, self_ty);
    }
    // Single-line `fn f() -> u64 { expr }` bodies.
    if body_start == body_end {
        if let Some(line) = file.lines.get(body_start - 1) {
            if let (Some(open), Some(close)) = (line.code.find('{'), line.code.rfind('}')) {
                if close > open {
                    observe(expr_fact(
                        line.code[open + 1..close].trim(),
                        &env,
                        summaries,
                        self_ty,
                    ));
                }
            }
        }
    }
    if agree {
        found
    } else {
        None
    }
}

/// Is `line_no` the body's tail expression line — the last non-blank
/// code line before the closing brace, not itself statement-terminated?
fn is_tail_expr(file: &SourceFile, line_no: usize, body_end: usize) -> bool {
    let code = match file.lines.get(line_no - 1) {
        Some(l) => l.code.trim(),
        None => return false,
    };
    if code.is_empty() || code.ends_with([';', '{', '}']) || code.ends_with(',') {
        return false;
    }
    // No later code before the `}` line.
    ((line_no + 1)..body_end).all(|n| {
        file.lines
            .get(n - 1)
            .map(|l| l.code.trim().is_empty())
            .unwrap_or(true)
    })
}

/// The single unambiguous dimension fact of an expression, resolving
/// call returns through the summaries. `None` on rescaling (`*`, `/`)
/// or conflicting facts.
fn expr_fact(expr: &str, env: &Env, summaries: &Summaries, self_ty: Option<&str>) -> Option<Fact> {
    if units::has_rescaling(expr) {
        return None;
    }
    let bytes = expr.as_bytes();
    let mut found: Option<Fact> = None;
    let mut merge = |f: Fact| -> bool {
        match found {
            None => {
                found = Some(f);
                true
            }
            Some(prev) if prev.dim == f.dim => {
                if f.interproc {
                    found = Some(f);
                }
                true
            }
            Some(_) => false,
        }
    };
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let name = &expr[start..i];
            let called = bytes.get(i) == Some(&b'(');
            let prev = bytes[..start].last().copied();
            let fact = if called {
                if let Some(u) = Unit::of_accessor(name) {
                    Some(Fact::local(Dim::Time(u)))
                } else {
                    let method = prev == Some(b'.');
                    let qualifier = (prev == Some(b':') && start >= 2 && bytes[start - 2] == b':')
                        .then(|| ident_before(expr, start.saturating_sub(2)))
                        .filter(|q| !q.is_empty());
                    let on_self = method && ident_before(expr, start - 1) == "self";
                    summaries
                        .ret_of(name, qualifier, method, on_self, self_ty)
                        .map(|dim| Fact {
                            dim,
                            interproc: true,
                        })
                }
            } else if prev == Some(b'.') {
                Dim::of_ident(name).map(Fact::local) // `self.deadline_us`
            } else {
                Dim::of_ident(name)
                    .map(Fact::local)
                    .or_else(|| env.get(name).copied())
            };
            if let Some(f) = fact {
                if !merge(f) {
                    return None;
                }
            }
        } else {
            i += 1;
        }
    }
    found
}

/// The identifier ending at byte `end` (exclusive).
fn ident_before(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    &code[start..end]
}

/// The operand right of byte `pos`, extended over a call's argument
/// list (`gap(3)`, `self.deadline_us()`), unlike the accessor-only
/// variant in [`units`].
fn operand_span_after(code: &str, pos: usize) -> &str {
    let base = units::operand_after(code, pos);
    let off = base.as_ptr() as usize - code.as_ptr() as usize;
    let end = off + base.len();
    if code[end..].starts_with('(') {
        if let Some(close) = units::matching_paren(code, end) {
            return &code[off..=close];
        }
    }
    base
}

/// The operand left of byte `pos`, extended over a trailing call.
fn operand_span_before(code: &str, pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    if end > 0 && bytes[end - 1] == b')' {
        let mut depth = 0i64;
        let mut i = end;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth != 0 {
            return "";
        }
        let mut start = i;
        while start > 0
            && (bytes[start - 1].is_ascii_alphanumeric()
                || bytes[start - 1] == b'_'
                || bytes[start - 1] == b'.')
        {
            start -= 1;
        }
        if start == i {
            return ""; // bare parenthesised group, not a call
        }
        return &code[start..end];
    }
    units::operand_before(code, end)
}

/// Dimension fact of one additive/comparison operand.
fn operand_fact(
    operand: &str,
    env: &Env,
    summaries: &Summaries,
    self_ty: Option<&str>,
) -> Option<Fact> {
    let operand = operand.trim();
    if operand.is_empty() || operand.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    if operand.contains('(') && operand.ends_with(')') {
        return expr_fact(operand, env, summaries, self_ty);
    }
    let last = operand.rsplit('.').next().unwrap_or(operand);
    if !last.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Dim::of_ident(last).map(Fact::local).or_else(|| {
        if operand.contains('.') {
            None // field of another struct — suffix only
        } else {
            env.get(operand).copied()
        }
    })
}

/// Should a mismatch between `l` and `r` be reported *here* rather than
/// by the intra-procedural family? Yes when a call boundary was crossed
/// or the dimensions differ in kind, not just scale.
fn ours(l: Fact, r: Fact) -> bool {
    l.interproc || r.interproc || !(l.dim.is_time() && r.dim.is_time())
}

/// The per-fn walk context: everything the line checks need besides the
/// line itself and the evolving environment.
struct Checker<'a> {
    summaries: &'a Summaries,
    old_covered: &'a BTreeSet<String>,
    self_ty: Option<&'a str>,
    file: &'a str,
    /// Name of the function under scrutiny.
    fn_name: &'a str,
    /// Dimension promised by the function's own name suffix, if any.
    ret_decl: Option<Dim>,
}

impl Checker<'_> {
    /// Flag additive arithmetic and ordering comparisons whose operands
    /// carry different dimensions, when the knowledge is
    /// interprocedural.
    fn check_additive(&self, code: &str, env: &Env, line_no: usize, out: &mut Vec<Finding>) {
        let (summaries, self_ty, file) = (self.summaries, self.self_ty, self.file);
        let bytes = code.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            let op: &str = match b {
                b'+' | b'-' => {
                    if bytes.get(i + 1) == Some(&b'>') {
                        continue;
                    }
                    if b == b'+' {
                        "+"
                    } else {
                        "-"
                    }
                }
                b'<' | b'>' => {
                    let spaced = i > 0
                        && bytes[i - 1] == b' '
                        && matches!(bytes.get(i + 1), Some(&b' ') | Some(&b'='));
                    if !spaced {
                        continue;
                    }
                    if b == b'<' {
                        "<"
                    } else {
                        ">"
                    }
                }
                _ => continue,
            };
            let skip = usize::from(bytes.get(i + 1) == Some(&b'='));
            let left = operand_span_before(code, i);
            let right = operand_span_after(code, i + 1 + skip);
            let (Some(lf), Some(rf)) = (
                operand_fact(left, env, summaries, self_ty),
                operand_fact(right, env, summaries, self_ty),
            ) else {
                continue;
            };
            if lf.dim != rf.dim && ours(lf, rf) {
                out.push(Finding {
                    rule: Rule::UnitFlowInterproc,
                    file: file.to_owned(),
                    line: line_no,
                    token: format!("{}{op}{}", lf.dim.label(), rf.dim.label()),
                    message: format!(
                        "mixed dimensions across a call boundary: `{left}` is {} but \
                     `{right}` is {} — rescale explicitly at the boundary",
                        lf.dim.label(),
                        rf.dim.label()
                    ),
                });
            }
        }
    }

    /// Check call arguments against graph-resolved callee parameter
    /// dimensions (methods, qualified paths, and interprocedurally-
    /// derived argument facts — everything the bare-name pass cannot
    /// see).
    fn check_calls(&self, code: &str, env: &Env, line_no: usize, out: &mut Vec<Finding>) {
        let (summaries, old_covered, self_ty, file) =
            (self.summaries, self.old_covered, self.self_ty, self.file);
        for site in call_sites(code) {
            if site.method && STD_COLLIDING_METHODS.contains(&site.name) {
                continue;
            }
            let cands = summaries.candidates(
                site.name,
                site.qualifier,
                site.method,
                site.on_self,
                self_ty,
            );
            let Some(first) = cands.first() else { continue };
            // Every candidate must agree on the parameter dimensions, or
            // the resolution is too weak to judge.
            if !cands.iter().all(|c| c.param_dims == first.param_dims) {
                continue;
            }
            let param_dims = &first.param_dims;
            if param_dims.iter().all(Option::is_none) {
                continue;
            }
            let Some(call_pos) = code.find(&format!("{}(", site.name)) else {
                continue;
            };
            let open = call_pos + site.name.len();
            let Some(close) = units::matching_paren(code, open) else {
                continue;
            };
            let args = split_args(&code[open + 1..close]);
            if args.len() != param_dims.len() {
                continue; // multi-line call or arity mismatch
            }
            for (arg, want) in args.iter().zip(param_dims) {
                let Some(want) = want else { continue };
                let arg = arg.trim();
                let plain_call = arg.ends_with("()");
                if !plain_call
                    && !arg
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                {
                    continue; // only plain identifiers/paths/nullary calls
                }
                let Some(got) = operand_fact(arg, env, summaries, self_ty) else {
                    continue;
                };
                if got.dim == *want {
                    continue;
                }
                // A local, time-on-time mismatch at a bare-name-unique
                // callee is the intra-procedural family's finding.
                if !got.interproc
                    && got.dim.is_time()
                    && want.is_time()
                    && !site.method
                    && site.qualifier.is_none()
                    && old_covered.contains(site.name)
                {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::UnitFlowInterproc,
                    file: file.to_owned(),
                    line: line_no,
                    token: format!("call:{}", site.name),
                    message: format!(
                        "`{arg}` carries {} but `{}` expects {} here (resolved through \
                     the call graph)",
                        got.dim.label(),
                        site.name,
                        want.label()
                    ),
                });
            }
        }
    }

    /// Flag a `return expr;` whose dimension contradicts the fn's own
    /// name suffix.
    fn check_return(
        &self,
        code: &str,
        env: &Env,
        line_no: usize,
        is_tail: bool,
        out: &mut Vec<Finding>,
    ) {
        let (summaries, self_ty, file, fn_name) =
            (self.summaries, self.self_ty, self.file, self.fn_name);
        let Some(want) = self.ret_decl else { return };
        let trimmed = code.trim();
        let expr = if let Some(rest) = trimmed.strip_prefix("return ") {
            rest.trim_end_matches(';')
        } else if is_tail
            && !trimmed.is_empty()
            && !trimmed.ends_with([';', ',', '{', '}'])
            && !trimmed.contains("=>")
        {
            trimmed
        } else {
            return;
        };
        let Some(got) = expr_fact(expr, env, summaries, self_ty) else {
            return;
        };
        if got.dim != want {
            out.push(Finding {
                rule: Rule::UnitFlowInterproc,
                file: file.to_owned(),
                line: line_no,
                token: format!("ret:{fn_name}"),
                message: format!(
                    "`{fn_name}` promises {} by its suffix but returns a {} value",
                    want.label(),
                    got.dim.label()
                ),
            });
        }
    }

    /// `let [mut] name = expr;` — bind `name`'s dimension, and flag a
    /// suffix that contradicts an interprocedurally-derived
    /// initialiser.
    fn bind_let(&self, code: &str, env: &mut Env, line_no: usize, out: &mut Vec<Finding>) {
        let (summaries, self_ty, file) = (self.summaries, self.self_ty, self.file);
        let Some((name, init)) = split_let(code) else {
            return;
        };
        let declared = Dim::of_ident(name);
        let inferred = expr_fact(init, env, summaries, self_ty);
        match (declared, inferred) {
            (Some(want), Some(got)) if got.interproc && got.dim != want => {
                out.push(Finding {
                    rule: Rule::UnitFlowInterproc,
                    file: file.to_owned(),
                    line: line_no,
                    token: format!("let:{name}"),
                    message: format!(
                        "`{name}` claims {} by its suffix but its initialiser produces \
                     {} through a call",
                        want.label(),
                        got.dim.label()
                    ),
                });
                env.insert(name.to_owned(), Fact::local(want));
            }
            (Some(want), _) => {
                env.insert(name.to_owned(), Fact::local(want));
            }
            (None, Some(got)) => {
                env.insert(name.to_owned(), got);
            }
            (None, None) => {}
        }
    }
}

/// `bind_let` without findings, for the return-inference fixpoint.
fn bind_let_quiet(code: &str, env: &mut Env, summaries: &Summaries, self_ty: Option<&str>) {
    let Some((name, init)) = split_let(code) else {
        return;
    };
    if let Some(d) = Dim::of_ident(name) {
        env.insert(name.to_owned(), Fact::local(d));
    } else if let Some(f) = expr_fact(init, env, summaries, self_ty) {
        env.insert(name.to_owned(), f);
    }
}

/// Split a plain `let [mut] name = init;` line; patterns are skipped.
fn split_let(code: &str) -> Option<(&str, &str)> {
    let pos = find_word(code, "let")?;
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    let after = rest[end..].trim_start();
    let init = if let Some(eq) = after.strip_prefix('=') {
        if eq.starts_with('=') {
            return None; // `==`
        }
        eq
    } else if after.starts_with(':') {
        match after.split_once('=') {
            Some((_, init)) => init,
            None => return None,
        }
    } else {
        return None;
    };
    Some((name, init.trim().trim_end_matches(';')))
}

/// Word-boundary find.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(rel) = code[search..].find(word) {
        let pos = search + rel;
        let before_ok =
            pos == 0 || !(bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_');
        let after = pos + word.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        search = pos + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::preprocess;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile {
                rel_path: (*path).to_owned(),
                crate_name: path.split('/').nth(1).unwrap_or("ff-sim").to_owned(),
                kind: FileKind::Lib,
                lines: preprocess(src),
            })
            .collect();
        let trees = items::build(&sources);
        analyze(&sources, &trees)
    }

    fn tokens(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.token.as_str()).collect()
    }

    #[test]
    fn return_dim_flows_into_arithmetic() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn beacon_interval_ms() -> u64 {\n    100\n}\n\
             pub fn next_wake(now_us: u64) -> u64 {\n    let gap = beacon_interval_ms();\n    now_us + gap\n}\n",
        )]);
        assert_eq!(tokens(&f), ["us+ms"], "{f:?}");
    }

    #[test]
    fn return_dim_flows_into_call_arguments() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn last_beacon_ms() -> u64 {\n    7\n}\n\
             pub fn push_us(ts_us: u64) {\n    let _ = ts_us;\n}\n\
             pub fn flush() {\n    let stamp = last_beacon_ms();\n    push_us(stamp);\n}\n",
        )]);
        assert_eq!(tokens(&f), ["call:push_us"], "{f:?}");
    }

    #[test]
    fn inferred_tail_return_propagates() {
        // `gap()` has no suffix; its tail expression is `_ms`-typed, so
        // the fixpoint still recovers the dimension.
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "fn gap(step_ms: u64) -> u64 {\n    step_ms\n}\n\
             pub fn f(now_us: u64) -> u64 {\n    now_us + gap(3)\n}\n",
        )]);
        assert_eq!(tokens(&f), ["us+ms"], "{f:?}");
    }

    #[test]
    fn suffixed_let_contradicting_call_is_flagged() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn deadline_us() -> u64 {\n    9\n}\n\
             pub fn f() {\n    let wake_ms = deadline_us();\n    let _ = wake_ms;\n}\n",
        )]);
        assert_eq!(tokens(&f), ["let:wake_ms"], "{f:?}");
    }

    #[test]
    fn cross_dimension_suffixes_are_ours() {
        // joules vs time is invisible to the time-only pass.
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn f(total_j: f64, t_us: f64) -> f64 {\n    total_j + t_us\n}\n",
        )]);
        assert_eq!(tokens(&f), ["j+us"], "{f:?}");
    }

    #[test]
    fn local_time_mismatches_stay_in_the_old_family() {
        // `start_us + budget_s` is the intra-procedural pass's finding;
        // this family must stay silent to avoid double reports.
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn f(start_us: u64, budget_s: u64) -> u64 {\n    start_us + budget_s\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn method_calls_resolve_through_the_owner_type() {
        let f = run(&[
            (
                "crates/ff-device/src/a.rs",
                "pub struct Meter;\n\
                 impl Meter {\n    pub fn push_us(&mut self, ts_us: u64) {\n        let _ = ts_us;\n    }\n}\n",
            ),
            (
                "crates/ff-sim/src/b.rs",
                "pub fn last_beacon_ms() -> u64 {\n    5\n}\n\
                 pub fn flush(m: &mut Meter) {\n    let stamp = last_beacon_ms();\n    m.push_us(stamp);\n}\n",
            ),
        ]);
        assert_eq!(tokens(&f), ["call:push_us"], "{f:?}");
    }

    #[test]
    fn rescaling_clears_the_flow() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn beacon_interval_ms() -> u64 {\n    100\n}\n\
             pub fn next_wake(now_us: u64) -> u64 {\n    let gap_us = beacon_interval_ms() * 1_000;\n    now_us + gap_us\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn return_contradicting_suffix_is_flagged() {
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub fn window_ms(limit_s: u64) -> u64 {\n    return limit_s;\n}\n",
        )]);
        assert_eq!(tokens(&f), ["ret:window_ms"], "{f:?}");
    }

    #[test]
    fn ambiguous_methods_are_not_judged() {
        // Two `record` methods with different param dims — resolution is
        // too weak, so no finding either way.
        let f = run(&[(
            "crates/ff-sim/src/a.rs",
            "pub struct A;\nimpl A {\n    pub fn record(&self, t_us: u64) {\n        let _ = t_us;\n    }\n}\n\
             pub struct B;\nimpl B {\n    pub fn record(&self, t_ms: u64) {\n        let _ = t_ms;\n    }\n}\n\
             pub fn f(b: &B, x_s: u64) {\n    b.record(x_s);\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
