//! Source discovery and lexical preprocessing.
//!
//! The lint pass deliberately avoids a real Rust parser (no `syn` in the
//! offline build environment). Instead each `.rs` file is run through a
//! character-level state machine that:
//!
//! * blanks the contents of string/char literals and comments, so rules
//!   that search for tokens like `HashMap` or `.unwrap()` never match
//!   prose or test fixtures embedded in strings,
//! * collects the comment text per line separately (the hygiene rule
//!   inventories open-work markers, which live *in* comments),
//! * tracks brace depth and `#[cfg(test)]` / `#[test]` attributes so
//!   rules can skip test-only code inside library files.
//!
//! The token stream this produces is approximate by design — it is a
//! ratcheted lint, not a compiler — but the approximations are all on
//! the conservative side for this workspace's style (attributes on their
//! own lines, no macro-generated `impl` blocks hiding forbidden calls).

use std::path::{Path, PathBuf};

/// Where a file sits in its crate, which decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — full rule set.
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/**`) — panic rules relaxed
    /// (a CLI reporting to a terminal may abort).
    Bin,
    /// Tests, benches and examples — only hygiene applies.
    Test,
}

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments and literal contents blanked to spaces.
    pub code: String,
    /// The unprocessed source line, literals intact. Most rules must
    /// match against [`Line::code`]; this exists for the few checks that
    /// legitimately key on string contents (the event-coverage family
    /// verifies the pinned meter-event *names*).
    pub raw: String,
    /// Comment text that appeared on this line (line or block comments).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` module or a
    /// `#[test]` function.
    pub in_test: bool,
}

/// A scanned file: workspace-relative path, role and preprocessed lines.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Name of the crate the file belongs to (`ff-sim`, `flexfetch-repro`
    /// for the root package).
    pub crate_name: String,
    /// Which rule scope the file falls into.
    pub kind: FileKind,
    /// Preprocessed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

/// Collect and preprocess every first-party `.rs` file under `root`.
///
/// Scope: the root package (`src/`, `tests/`, `benches/`, `examples/`)
/// and every crate under `crates/`. `vendor/` is excluded on purpose —
/// those shims stand in for crates.io dependencies and e.g. `criterion`
/// legitimately uses wall-clock time.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    scan_package(root, "flexfetch-repro", &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            scan_package(&dir, &name, &mut files)?;
        }
    }
    // Deterministic report order regardless of directory enumeration.
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Scan one package directory (the workspace root or a `crates/*` dir).
fn scan_package(pkg: &Path, crate_name: &str, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let root = pkg;
    for (sub, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Test),
        ("examples", FileKind::Test),
    ] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_rs(&dir, kind, crate_name, root, out)?;
        }
    }
    Ok(())
}

fn walk_rs(
    dir: &Path,
    kind: FileKind,
    crate_name: &str,
    pkg_root: &Path,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // The root package's src/ contains crates/ and vendor/ only
            // via the workspace root — but scan_package passes pkg_root
            // joined with src, so nested dirs here are modules or bin/.
            let nested_kind = if path.file_name().map(|n| n == "bin").unwrap_or(false) {
                FileKind::Bin
            } else {
                kind
            };
            walk_rs(&path, nested_kind, crate_name, pkg_root, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let file_kind = if kind == FileKind::Lib
                && path.file_name().map(|n| n == "main.rs").unwrap_or(false)
            {
                FileKind::Bin
            } else {
                kind
            };
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(pkg_root.parent().unwrap_or(pkg_root))
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            // For crates/<name>/src/x.rs the prefix strip above lands on
            // "<name>/src/x.rs"; re-anchor at the workspace root.
            let rel_path = anchor_rel(&rel, crate_name);
            out.push(SourceFile {
                rel_path,
                crate_name: crate_name.to_owned(),
                kind: file_kind,
                lines: preprocess(&text),
            });
        }
    }
    Ok(())
}

/// Normalise a stripped path to be workspace-root relative.
fn anchor_rel(rel: &str, crate_name: &str) -> String {
    if crate_name == "flexfetch-repro" {
        // Root package: strip_prefix used the root's parent, so the path
        // begins with the root dir's own name; drop that first component.
        match rel.split_once('/') {
            Some((_, rest)) => rest.to_owned(),
            None => rel.to_owned(),
        }
    } else {
        format!("crates/{rel}")
    }
}

/// Lexer state for [`preprocess`].
enum LexState {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Blank comments and literal contents while preserving line structure,
/// and mark test-scoped lines.
pub fn preprocess(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<(String, String)> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = LexState::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let LexState::LineComment = state {
                state = LexState::Code;
            }
            lines.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        match state {
            LexState::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = LexState::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    // Raw string? Look back for r / r# / br## prefixes.
                    let hashes = trailing_raw_hashes(&code);
                    if let Some(n) = hashes {
                        state = LexState::RawStr(n);
                    } else {
                        state = LexState::Str;
                    }
                    code.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // couple of characters (or starts with an escape).
                    let is_char = matches!(chars.get(i + 1), Some('\\'))
                        || matches!(chars.get(i + 2), Some('\''));
                    if is_char {
                        state = LexState::Char;
                    }
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => {
                comment.push(c);
                i += 1;
            }
            LexState::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    // Never swallow a line-continuation newline.
                    let skip = if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                    code.push_str("  ");
                    i += skip;
                } else if c == '"' {
                    state = LexState::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(n) => {
                if c == '"' && count_hashes(&chars, i + 1) >= n {
                    code.push('"');
                    for _ in 0..n {
                        code.push(' ');
                    }
                    state = LexState::Code;
                    i += 1 + n;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = LexState::Code;
                    code.push('\'');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push((code, comment));
    }

    mark_test_scopes(lines, text)
}

/// If `code` ends with a raw-string prefix (`r`, `br`, `r#`…), return the
/// hash count; the caller is looking at the opening `"`.
fn trailing_raw_hashes(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut n = bytes.len();
    let mut hashes = 0;
    while n > 0 && bytes[n - 1] == b'#' {
        hashes += 1;
        n -= 1;
    }
    if n == 0 {
        return None;
    }
    let mut end = n;
    if bytes[end - 1] == b'r' {
        end -= 1;
        if end > 0 && bytes[end - 1] == b'b' {
            end -= 1;
        }
        // `r` must not be the tail of an identifier (e.g. `var"..."` is
        // not valid Rust anyway, but `feature = r"..."` is).
        let prev_ident =
            end > 0 && (bytes[end - 1].is_ascii_alphanumeric() || bytes[end - 1] == b'_');
        if !prev_ident {
            return Some(hashes);
        }
    }
    None
}

fn count_hashes(chars: &[char], from: usize) -> usize {
    chars[from..].iter().take_while(|&&c| c == '#').count()
}

/// Second pass: brace-depth tracking to mark `#[cfg(test)]` / `#[test]`
/// scopes.
fn mark_test_scopes(lines: Vec<(String, String)>, text: &str) -> Vec<Line> {
    let mut out = Vec::with_capacity(lines.len());
    let mut raws = text.lines();
    let mut depth: i64 = 0;
    let mut scopes: Vec<i64> = Vec::new();
    let mut pending = false;
    for (code, comment) in lines {
        let raw = raws.next().unwrap_or_default().to_owned();
        let had_attr = code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test");
        if had_attr {
            pending = true;
        }
        let in_test = !scopes.is_empty() || pending;
        let mut saw_brace = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    saw_brace = true;
                    if pending {
                        scopes.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if scopes.last() == Some(&depth) {
                        scopes.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use …;` — attribute consumed by a braceless item.
        if pending && !saw_brace && code.trim_end().ends_with(';') {
            pending = false;
        }
        out.push(Line {
            code,
            raw,
            comment,
            in_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap::new()\"; // uses HashMap\nlet y = 1;\n";
        let lines = preprocess(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("uses HashMap"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "a();\n/* unwrap()\n   more */ b();\n";
        let lines = preprocess(src);
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].comment.contains("unwrap"));
        assert!(lines[2].code.contains("b()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"panic!(\"x\")\"#;\nc();\n";
        let lines = preprocess(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[1].code.contains("c()"));
    }

    #[test]
    fn char_literals_do_not_eat_the_line() {
        let src = "let q = '\"'; let h = HashMap::new();\n";
        let lines = preprocess(src);
        assert!(lines[0].code.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet u = v.unwrap();\n";
        let lines = preprocess(src);
        assert!(lines[1].code.contains("unwrap"));
    }

    #[test]
    fn cfg_test_scopes_are_marked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}
fn lib2() {}
";
        let lines = preprocess(src);
        assert!(!lines[0].in_test, "lib fn");
        assert!(lines[4].in_test, "test fn body");
        assert!(lines[5].in_test, "unwrap line");
        assert!(!lines[8].in_test, "code after the test mod");
    }

    #[test]
    fn test_attr_on_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn lib() { b(); }\n";
        let lines = preprocess(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }
}
