//! Event-coverage analysis: every device-state transition the FSM
//! checker proves reachable must also be *observable*.
//!
//! The observability layer (PR 4) only sees what the models emit: the
//! `StateMeter` dwell/transition calls in `ff-device`, drained by the
//! simulator into `record::Event` values. A transition that fires but is
//! never metered silently disappears from traces, energy accounting,
//! and the bench export — the classic failure mode this family guards
//! against. Three legs:
//!
//! 1. **recording** — every `self.state = …` assignment in an extracted
//!    [`FsmTable`] must sit within a few lines of a `.dwell(` /
//!    `.transition(` meter call in the same fn, i.e. the state change is
//!    accounted before (or as) it happens;
//! 2. **naming** — the required machines must emit the pinned meter
//!    transition names (`spin_down`/`spin_up`, `cam_to_psm`/
//!    `psm_to_cam`) that downstream recorders and the bench export key
//!    on;
//! 3. **wiring** — when `ff-sim` is in the scanned tree, its `Event`
//!    enum must still declare the `DeviceState`/`DeviceTransition`
//!    variants, some simulator code must drain the meters
//!    (`take_state_changes`), and the drained changes must actually be
//!    re-emitted as `DeviceTransition` events.
//!
//! Like `model-invariants` and `fsm`, the family is *required-presence*:
//! deleting the plumbing it audits is itself a finding, never a silent
//! pass.

use crate::fsm::{FsmTable, EXPECTED_METER_NAMES};
use crate::items::ItemTree;
use crate::rules::{Finding, Rule};
use crate::scan::{FileKind, SourceFile};

/// How many lines above a `self.state = …` assignment a meter call may
/// sit and still count as recording that transition. The real models
/// meter the dwell/transient energy immediately before committing the
/// state change; 6 lines spans the widest such gap (a multi-line
/// `.dwell(` call plus the deadline arithmetic between them).
const RECORD_WINDOW: usize = 6;

/// Run the event-coverage checks.
pub fn analyze(sources: &[SourceFile], trees: &[ItemTree], tables: &[FsmTable]) -> Vec<Finding> {
    let mut out = Vec::new();
    for table in tables {
        check_recording(sources, trees, table, &mut out);
    }
    check_meter_names(sources, tables, &mut out);
    check_sim_wiring(sources, trees, &mut out);
    out
}

fn finding(file: &str, line: usize, token: String, message: String) -> Finding {
    Finding {
        rule: Rule::EventCoverage,
        file: file.to_owned(),
        line,
        token,
        message,
    }
}

/// Leg 1: each transition's assignment line must have a meter call in
/// the preceding [`RECORD_WINDOW`] lines of the same fn.
fn check_recording(
    sources: &[SourceFile],
    trees: &[ItemTree],
    table: &FsmTable,
    out: &mut Vec<Finding>,
) {
    let Some(fi) = sources.iter().position(|f| f.rel_path == table.file) else {
        return;
    };
    let file = &sources[fi];
    for tr in &table.transitions {
        if tr.from == tr.to {
            continue; // self-loop: no observable change
        }
        let fn_start = trees[fi]
            .fn_at(tr.line)
            .map(|f| f.decl_line)
            .unwrap_or_else(|| tr.line.saturating_sub(RECORD_WINDOW).max(1));
        let lo = tr.line.saturating_sub(RECORD_WINDOW).max(fn_start);
        let recorded = (lo..=tr.line).any(|n| {
            file.lines
                .get(n - 1)
                .map(|l| l.code.contains(".dwell(") || l.code.contains(".transition("))
                .unwrap_or(false)
        });
        if !recorded {
            out.push(finding(
                &table.file,
                tr.line,
                format!("unrecorded:{}::{}->{}", table.enum_name, tr.from, tr.to),
                format!(
                    "the {}::{} -> {} transition (line {}) commits a state change with \
                     no `.dwell(`/`.transition(` meter call in the {} lines above it — \
                     the change is invisible to the observability layer",
                    table.enum_name, tr.from, tr.to, tr.line, RECORD_WINDOW
                ),
            ));
        }
    }
}

/// Leg 2: the required machines must emit the pinned meter transition
/// names. Only checked when the machine was actually extracted — a
/// missing machine is already the `fsm` family's `fsm-missing` finding.
fn check_meter_names(sources: &[SourceFile], tables: &[FsmTable], out: &mut Vec<Finding>) {
    for (exp_file, exp_enum, names) in EXPECTED_METER_NAMES {
        if !tables
            .iter()
            .any(|t| t.file == exp_file && t.enum_name == exp_enum)
        {
            continue;
        }
        let Some(file) = sources.iter().find(|f| f.rel_path == exp_file) else {
            continue;
        };
        for name in names {
            // Matched against the *raw* line: the preprocessor blanks
            // string literals, and the name lives inside one.
            let needle = format!(".transition(\"{name}\"");
            let seen = file
                .lines
                .iter()
                .any(|l| !l.in_test && l.raw.contains(&needle));
            if !seen {
                out.push(finding(
                    exp_file,
                    1,
                    format!("meter-name-missing:{name}"),
                    format!(
                        "the {exp_enum} machine never emits the pinned meter transition \
                         `{name}` — recorders and the bench export key on that name"
                    ),
                ));
            }
        }
    }
}

/// Leg 3: the simulator must still carry meter events into the record
/// stream. Gated on `ff-sim` being part of the scanned tree so synthetic
/// fixtures without a simulator stay silent.
fn check_sim_wiring(sources: &[SourceFile], trees: &[ItemTree], out: &mut Vec<Finding>) {
    let sim_files: Vec<usize> = sources
        .iter()
        .enumerate()
        .filter(|(_, f)| f.crate_name == "ff-sim" && f.kind == FileKind::Lib)
        .map(|(i, _)| i)
        .collect();
    if sim_files.is_empty() {
        return;
    }
    let sim_root = "crates/ff-sim/src/lib.rs";

    // The Event enum and its device variants.
    let event_enum = sim_files.iter().find_map(|&fi| {
        trees[fi]
            .enum_named("Event")
            .map(|e| (sources[fi].rel_path.clone(), e))
    });
    match event_enum {
        None => out.push(finding(
            sim_root,
            1,
            "event-enum-missing".to_owned(),
            "ff-sim no longer declares a record `Event` enum — device-state \
             observability has lost its carrier type"
                .to_owned(),
        )),
        Some((rel_path, e)) => {
            for variant in ["DeviceState", "DeviceTransition"] {
                if !e.variants.iter().any(|v| v == variant) {
                    out.push(finding(
                        &rel_path,
                        e.decl_line,
                        format!("event-variant-missing:{variant}"),
                        format!(
                            "the record `Event` enum has no `{variant}` variant — \
                             metered device activity can no longer reach the trace"
                        ),
                    ));
                }
            }
        }
    }

    // The drain: someone must pull StateChange batches off the meters…
    let drains = sim_files.iter().any(|&fi| {
        sources[fi]
            .lines
            .iter()
            .any(|l| !l.in_test && l.code.contains("take_state_changes"))
    });
    if !drains {
        out.push(finding(
            sim_root,
            1,
            "undrained-state-log".to_owned(),
            "no ff-sim code calls `take_state_changes` — device meters accumulate \
             state changes that are never drained into the event stream"
                .to_owned(),
        ));
    }

    // …and re-emit them as DeviceTransition events.
    let emits = sim_files.iter().any(|&fi| {
        sources[fi]
            .lines
            .iter()
            .any(|l| !l.in_test && l.code.contains("DeviceTransition {"))
    });
    if !emits {
        out.push(finding(
            sim_root,
            1,
            "unemitted:DeviceTransition".to_owned(),
            "no ff-sim code constructs `DeviceTransition` events — drained meter \
             transitions never reach the recorders"
                .to_owned(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::preprocess;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_owned(),
            crate_name: path.split('/').nth(1).unwrap_or("x").to_owned(),
            kind: FileKind::Lib,
            lines: preprocess(src),
        }
    }

    fn run(files: Vec<SourceFile>) -> Vec<Finding> {
        let trees = items::build(&files);
        let (tables, _) = crate::fsm::analyze(&files, &trees);
        analyze(&files, &trees, &tables)
    }

    fn tokens(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.token.as_str()).collect()
    }

    const RECORDED: &str = "\
pub enum GateState {
    Open,
    Shut,
}
pub struct Gate {
    state: GateState,
}
impl Gate {
    pub fn new() -> Self {
        Gate {
            state: GateState::Open,
        }
    }
    fn advance(&mut self) {
        match self.state {
            GateState::Open => {
                self.meter.transition(\"shut\", self.params.shut_energy);
                self.state = GateState::Shut;
            }
            GateState::Shut => {
                self.meter.dwell(\"shut\", self.params.shut_power, d);
                self.state = GateState::Open;
            }
        }
    }
}
";

    #[test]
    fn metered_transitions_are_clean() {
        let f = run(vec![file("crates/ff-device/src/gate.rs", RECORDED)]);
        assert!(
            !tokens(&f).iter().any(|t| t.starts_with("unrecorded:")),
            "{f:?}"
        );
    }

    #[test]
    fn unmetered_transition_is_flagged() {
        let src = RECORDED.replace(
            "                self.meter.transition(\"shut\", self.params.shut_energy);\n",
            "",
        );
        let f = run(vec![file("crates/ff-device/src/gate.rs", &src)]);
        assert!(
            tokens(&f).contains(&"unrecorded:GateState::Open->Shut"),
            "{f:?}"
        );
    }

    #[test]
    fn meter_call_outside_the_fn_does_not_count() {
        // A meter call in the *previous* fn, within 6 raw lines of the
        // assignment, must not satisfy the window.
        let src = "\
pub enum GateState {
    Open,
    Shut,
}
pub struct Gate {
    state: GateState,
}
impl Gate {
    fn noisy(&mut self) {
        self.meter.transition(\"shut\", self.params.shut_energy);
    }
    fn advance(&mut self) {
        if self.state == GateState::Open {
            self.state = GateState::Shut;
        }
    }
}
";
        let f = run(vec![file("crates/ff-device/src/gate.rs", src)]);
        assert!(
            tokens(&f).contains(&"unrecorded:GateState::Open->Shut"),
            "{f:?}"
        );
    }

    #[test]
    fn required_machines_must_emit_the_pinned_meter_names() {
        // A DiskState machine in the canonical file, metered with dwell
        // calls only: recording passes but the pinned transition names
        // are absent.
        let src = "\
pub enum DiskState {
    Idle,
    Standby,
}
pub struct DiskModel {
    state: DiskState,
}
impl DiskModel {
    pub fn new() -> Self {
        DiskModel {
            state: DiskState::Idle,
        }
    }
    fn advance(&mut self) {
        match self.state {
            DiskState::Idle => {
                self.meter.dwell(\"idle\", p, d);
                self.state = DiskState::Standby;
            }
            DiskState::Standby => {
                self.meter.dwell(\"standby\", p, d);
                self.state = DiskState::Idle;
            }
        }
    }
}
";
        let f = run(vec![file("crates/ff-device/src/disk.rs", src)]);
        let t = tokens(&f);
        assert!(t.contains(&"meter-name-missing:spin_down"), "{t:?}");
        assert!(t.contains(&"meter-name-missing:spin_up"), "{t:?}");
    }

    const SIM_OK: &str = "\
pub enum Event {
    DeviceState { at: u64 },
    DeviceTransition { at: u64 },
}
pub fn drain(disk: &mut DiskModel) -> Vec<Event> {
    let mut out = Vec::new();
    for c in disk.take_state_changes() {
        out.push(Event::DeviceTransition { at: c.at });
    }
    out
}
";

    #[test]
    fn wired_simulator_is_clean() {
        let f = run(vec![file("crates/ff-sim/src/record.rs", SIM_OK)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_event_enum_is_flagged() {
        let f = run(vec![file(
            "crates/ff-sim/src/record.rs",
            "pub fn noop() {}\n",
        )]);
        let t = tokens(&f);
        assert!(t.contains(&"event-enum-missing"), "{t:?}");
        assert!(t.contains(&"undrained-state-log"), "{t:?}");
        assert!(t.contains(&"unemitted:DeviceTransition"), "{t:?}");
    }

    #[test]
    fn dropped_variant_is_flagged() {
        let src = SIM_OK.replace("    DeviceState { at: u64 },\n", "");
        let f = run(vec![file("crates/ff-sim/src/record.rs", &src)]);
        assert!(
            tokens(&f).contains(&"event-variant-missing:DeviceState"),
            "{f:?}"
        );
    }

    #[test]
    fn non_sim_trees_skip_the_wiring_checks() {
        let f = run(vec![file("crates/ff-device/src/gate.rs", RECORDED)]);
        assert!(
            !tokens(&f)
                .iter()
                .any(|t| t.starts_with("event-") || *t == "undrained-state-log"),
            "{f:?}"
        );
    }
}
