//! Wave 4: numeric abstract interpretation over the item tree.
//!
//! The first three semantic waves prove *shape* properties — state
//! machines, unit dimensions, taint. This wave proves *value-range*
//! properties, which is what FlexFetch's energy argument actually
//! rests on: energy accumulators never go negative, divisors never
//! reach zero, counters do not silently truncate, and the paper's
//! timeout constants satisfy the §3 break-even ordering.
//!
//! The domain is a product of three components per expression:
//!
//! - a signed **interval** ([`crate::interval::Interval`]) over the
//!   extended reals,
//! - the **sign** lattice ([`crate::interval::Sign`]), kept alongside
//!   the interval so polarity survives widening,
//! - the **dimension** component reused from the dataflow wave
//!   ([`crate::dataflow::Dim`]: time-at-scale, joules, bytes).
//!
//! Abstract values are computed by a small expression evaluator over
//! the preprocessed line text: numeric literals and the Table 1/2
//! constant environment (seeded from `ff-device::consts` via
//! [`crate::consts`]) become points, `let` bindings extend a per-
//! function environment, reassignment joins, `+=` accumulation widens
//! (the standard jump-to-infinity widening, so loops terminate in one
//! round), and function summaries are computed by a two-round
//! descending fixpoint: round one evaluates every function's return
//! expression with all calls mapped to `TOP`, round two re-evaluates
//! with round one's summaries substituted. Both rounds are sound, so
//! the tighter second round is kept.
//!
//! Three rule families consume the facts, all pinned at zero:
//!
//! - **arith-safety** — divisions whose divisor provably may be zero
//!   (interval contains zero, or an explicit `.max(0)` floor), lossy
//!   narrowing and float→int `as` casts that the interval cannot prove
//!   safe, and unchecked `+`/`*`/`+=` on `_bytes`/`_us` counters where
//!   `saturating_*` or the `ff_base::checked` helpers exist.
//! - **energy-bounds** — every `_j`/`_energy` accumulation must be
//!   provably non-negative: no `-=` on energy accumulators, no `+=` of
//!   a provably non-positive quantity, no negative `Joules(..)`
//!   construction, and battery `*drain*` functions must stay monotone
//!   (no subtraction in their bodies).
//! - **timeout-order** — recomputes T_breakeven from the constant
//!   registry with interval arithmetic and statically proves the §3
//!   ordering: `0 < T_breakeven < DISK_TIMEOUT_S < outage-retry
//!   ceiling`, where the ceiling is the retry ladder's clamp bound
//!   (base backoff × 2^16; the ladder sum a `RetryPolicy` can reach is
//!   far smaller, but the clamp is what bounds a runaway ladder), plus
//!   `WNIC_PSM_TIMEOUT_MS < T_breakeven` and the requirement that
//!   every backoff shift is `.min(..)`-clamped and overflow-free.

use crate::consts;
use crate::dataflow::Dim;
use crate::interval::{Interval, Sign};
use crate::items::{self, Item, ItemTree};
use crate::rules::{call_args, parse_num, Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use crate::units::Unit;
use std::collections::BTreeMap;

/// Crates whose library code is held to `arith-safety`.
pub(crate) const ARITH_CRATES: [&str; 4] = ["ff-bench", "ff-profile", "ff-sim", "ff-trace"];

/// Crates whose library code is held to `energy-bounds`.
pub(crate) const ENERGY_CRATES: [&str; 2] = ["ff-device", "ff-sim"];

/// Integer cast targets that narrow from the workspace's `u64`/`usize`
/// counters; a cast to one of these must be interval-proven to fit.
const NARROW_TARGETS: [(&str, f64, f64); 6] = [
    ("i16", -32768.0, 32767.0),
    ("i32", -2147483648.0, 2147483647.0),
    ("i8", -128.0, 127.0),
    ("u16", 0.0, 65535.0),
    ("u32", 0.0, 4294967295.0),
    ("u8", 0.0, 255.0),
];

/// Integer cast targets for the float→int truncation check.
const INT_TARGETS: [&str; 10] = [
    "i16", "i32", "i64", "i8", "isize", "u16", "u32", "u64", "u8", "usize",
];

/// One value in the product domain: interval × sign × dimension, plus
/// a syntactic "came from float arithmetic" taint used by the
/// truncating-cast check.
#[derive(Debug, Clone)]
pub(crate) struct AbsVal {
    pub(crate) iv: Interval,
    pub(crate) sign: Sign,
    pub(crate) dim: Option<Dim>,
    pub(crate) floaty: bool,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal {
            iv: Interval::TOP,
            sign: Sign::Unknown,
            dim: None,
            floaty: false,
        }
    }

    fn of_interval(iv: Interval) -> AbsVal {
        AbsVal {
            iv,
            sign: iv.sign(),
            dim: None,
            floaty: false,
        }
    }

    fn point(v: f64, floaty: bool) -> AbsVal {
        let mut a = AbsVal::of_interval(Interval::point(v));
        a.floaty = floaty;
        a
    }

    /// Unknown value carrying a dimension hint: physical quantities in
    /// this codebase (counters, durations, joules) are non-negative.
    fn counter(dim: Option<Dim>) -> AbsVal {
        AbsVal {
            iv: Interval::NON_NEG,
            sign: Sign::NonNeg,
            dim,
            floaty: false,
        }
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(other.iv),
            sign: self.sign.join(other.sign),
            dim: if self.dim == other.dim {
                self.dim
            } else {
                None
            },
            floaty: self.floaty || other.floaty,
        }
    }
}

/// Keeps the stored sign at least as precise as the interval implies.
fn refine(mut v: AbsVal) -> AbsVal {
    let projected = v.iv.sign();
    if v.sign == Sign::Unknown {
        v.sign = projected;
    }
    v
}

type Env = BTreeMap<String, AbsVal>;
type Sums = BTreeMap<String, Interval>;

/// Dimension of an identifier, extended with the energy-field naming
/// convention (`energy`, `*_energy`) the `_j` suffix rule misses.
fn dim_of_name(name: &str) -> Option<Dim> {
    if let Some(d) = Dim::of_ident(name) {
        return Some(d);
    }
    if name == "energy" || name.ends_with("_energy") {
        return Some(Dim::Joules);
    }
    None
}

/// Names that abstract to "unknown but non-negative physical quantity".
fn is_nonneg_name(name: &str) -> bool {
    dim_of_name(name).is_some()
        || name.ends_with("_power")
        || name.ends_with("_w")
        || name.ends_with("_wh")
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum TK {
    Num(f64, bool),
    Ident,
    LParen,
    RParen,
    Dot,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    As,
    Question,
    Other,
}

#[derive(Debug, Clone, Copy)]
struct Tok {
    kind: TK,
    start: usize,
    end: usize,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenise one expression slice. Positions index into `s`; only ASCII
/// bytes start tokens, so slicing at token boundaries is always valid.
fn lex(s: &str) -> Vec<Tok> {
    let b = s.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let start = i;
        let kind = if c == b' ' || c == b'\t' {
            i += 1;
            continue;
        } else if c.is_ascii_digit() {
            let mut floaty = false;
            while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_' || b[i] == b'x') {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                floaty = true;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    floaty = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let lit_end = i;
            // Type suffix (`1u64`, `2.5f64`).
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            let suffix = &s[lit_end..i];
            let floaty = floaty || suffix.starts_with('f');
            match parse_num(&s[start..lit_end]) {
                Some(v) => TK::Num(v, floaty),
                None => TK::Other,
            }
        } else if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            // Fold `::` path segments into one ident token.
            while i + 2 < b.len()
                && b[i] == b':'
                && b[i + 1] == b':'
                && (b[i + 2].is_ascii_alphabetic() || b[i + 2] == b'_')
            {
                i += 2;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
            }
            if &s[start..i] == "as" {
                TK::As
            } else {
                TK::Ident
            }
        } else {
            i += 1;
            match c {
                b'(' => TK::LParen,
                b')' => TK::RParen,
                b'.' => {
                    if i < b.len() && b[i] == b'.' {
                        i += 1;
                        TK::Other
                    } else {
                        TK::Dot
                    }
                }
                b',' => TK::Comma,
                b'+' => TK::Plus,
                b'-' => TK::Minus,
                b'*' => TK::Star,
                b'/' => TK::Slash,
                b'%' => TK::Percent,
                b'<' => {
                    if i < b.len() && b[i] == b'<' {
                        i += 1;
                        TK::Shl
                    } else {
                        TK::Other
                    }
                }
                b'?' => TK::Question,
                _ => TK::Other,
            }
        };
        toks.push(Tok {
            kind,
            start,
            end: i,
        });
    }
    toks
}

// ---------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------

struct Eval<'a> {
    src: &'a str,
    toks: Vec<Tok>,
    i: usize,
    env: &'a Env,
    sums: &'a Sums,
}

impl<'a> Eval<'a> {
    fn new(src: &'a str, env: &'a Env, sums: &'a Sums) -> Eval<'a> {
        Eval {
            src,
            toks: lex(src),
            i: 0,
            env,
            sums,
        }
    }

    fn peek(&self) -> Option<Tok> {
        self.toks.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn text(&self, t: Tok) -> &'a str {
        self.src.get(t.start..t.end).unwrap_or("")
    }

    /// Full expression: shift level (`<<` lowest handled here).
    fn expr(&mut self) -> AbsVal {
        let mut v = self.additive();
        while let Some(t) = self.peek() {
            if t.kind != TK::Shl {
                break;
            }
            self.bump();
            let rhs = self.additive();
            v = refine(AbsVal {
                iv: shl_interval(v.iv, rhs.iv),
                sign: Sign::Unknown,
                dim: None,
                floaty: false,
            });
        }
        v
    }

    fn additive(&mut self) -> AbsVal {
        let mut v = self.term();
        while let Some(t) = self.peek() {
            let op = t.kind;
            if op != TK::Plus && op != TK::Minus {
                break;
            }
            self.bump();
            let rhs = self.term();
            v = match op {
                TK::Plus => AbsVal {
                    iv: v.iv.add(rhs.iv),
                    sign: v.sign.add(rhs.sign),
                    dim: if v.dim == rhs.dim { v.dim } else { None },
                    floaty: v.floaty || rhs.floaty,
                },
                _ => AbsVal {
                    iv: v.iv.sub(rhs.iv),
                    sign: v.sign.add(rhs.sign.neg()),
                    dim: if v.dim == rhs.dim { v.dim } else { None },
                    floaty: v.floaty || rhs.floaty,
                },
            };
            v = refine(v);
        }
        v
    }

    fn term(&mut self) -> AbsVal {
        let mut v = self.unary();
        while let Some(t) = self.peek() {
            let op = t.kind;
            if op != TK::Star && op != TK::Slash && op != TK::Percent {
                break;
            }
            self.bump();
            let rhs = self.unary();
            v = match op {
                TK::Star => refine(AbsVal {
                    iv: v.iv.mul(rhs.iv),
                    sign: v.sign.mul(rhs.sign),
                    dim: v.dim.or(rhs.dim),
                    floaty: v.floaty || rhs.floaty,
                }),
                TK::Slash => refine(AbsVal {
                    iv: v.iv.div(rhs.iv),
                    sign: Sign::Unknown,
                    dim: None,
                    floaty: v.floaty || rhs.floaty,
                }),
                _ => {
                    // `a % b` with a positive divisor is bounded by the
                    // divisor's magnitude. Counters and sizes here are
                    // unsigned, so an *unknown* dividend is treated as
                    // non-negative (the workspace convention); only a
                    // provably negative-capable dividend keeps the
                    // signed hull.
                    let iv = if rhs.iv.is_pos() && rhs.iv.hi.is_finite() {
                        if v.iv.lo >= 0.0 || v.iv.is_top() {
                            Interval::new(0.0, rhs.iv.hi)
                        } else {
                            Interval::new(-rhs.iv.hi, rhs.iv.hi)
                        }
                    } else {
                        Interval::TOP
                    };
                    refine(AbsVal {
                        iv,
                        sign: Sign::Unknown,
                        dim: v.dim,
                        floaty: v.floaty || rhs.floaty,
                    })
                }
            };
        }
        v
    }

    fn unary(&mut self) -> AbsVal {
        if let Some(t) = self.peek() {
            if t.kind == TK::Minus {
                self.bump();
                let v = self.unary();
                return refine(AbsVal {
                    iv: v.iv.neg(),
                    sign: v.sign.neg(),
                    dim: v.dim,
                    floaty: v.floaty,
                });
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> AbsVal {
        let mut v = self.primary();
        loop {
            match self.peek().map(|t| t.kind) {
                Some(TK::Question) => {
                    self.bump();
                }
                Some(TK::As) => {
                    self.bump();
                    let target = match self.peek() {
                        Some(t) if t.kind == TK::Ident => {
                            self.bump();
                            self.text(t)
                        }
                        _ => break,
                    };
                    v = apply_cast(v, target);
                }
                Some(TK::Dot) => {
                    self.bump();
                    let name = match self.peek() {
                        Some(t) if t.kind == TK::Ident => {
                            self.bump();
                            self.text(t)
                        }
                        _ => break,
                    };
                    if self.peek().map(|t| t.kind) == Some(TK::LParen) {
                        self.bump();
                        let args = self.args();
                        v = apply_method(v, name, &args);
                    } else {
                        // Field access: abstract by the field's name.
                        v = field_val(name);
                    }
                }
                _ => break,
            }
        }
        v
    }

    /// Parse a call's arguments up to the matching `)`.
    fn args(&mut self) -> Vec<AbsVal> {
        let mut out = Vec::new();
        if self.peek().map(|t| t.kind) == Some(TK::RParen) {
            self.bump();
            return out;
        }
        loop {
            out.push(self.expr());
            match self.bump().map(|t| t.kind) {
                Some(TK::Comma) => continue,
                Some(TK::RParen) | None => break,
                // Closures, ranges and other unmodelled argument syntax:
                // skip to the matching close paren.
                _ => {
                    let mut depth = 0usize;
                    while let Some(t) = self.bump() {
                        match t.kind {
                            TK::LParen => depth += 1,
                            TK::RParen => {
                                if depth == 0 {
                                    return out;
                                }
                                depth -= 1;
                            }
                            _ => {}
                        }
                    }
                    break;
                }
            }
        }
        out
    }

    fn primary(&mut self) -> AbsVal {
        match self.peek() {
            Some(t) if t.kind == TK::LParen => {
                self.bump();
                let v = self.expr();
                if self.peek().map(|x| x.kind) == Some(TK::RParen) {
                    self.bump();
                }
                v
            }
            Some(t) => match t.kind {
                TK::Num(v, floaty) => {
                    self.bump();
                    AbsVal::point(v, floaty)
                }
                TK::Ident => {
                    self.bump();
                    let name = self.text(t);
                    if self.peek().map(|x| x.kind) == Some(TK::LParen) {
                        self.bump();
                        let args = self.args();
                        call_val(name, &args, self.sums)
                    } else {
                        ident_val(name, self.env)
                    }
                }
                _ => {
                    self.bump();
                    AbsVal::top()
                }
            },
            None => AbsVal::top(),
        }
    }
}

/// `lhs << rhs` over intervals: only meaningful for non-negative bases.
fn shl_interval(lhs: Interval, rhs: Interval) -> Interval {
    if !lhs.is_nonneg() || !rhs.is_nonneg() {
        return Interval::TOP;
    }
    let scale = |bound: f64, exp: f64| -> f64 {
        if exp > 63.0 || !exp.is_finite() {
            f64::INFINITY
        } else {
            bound * (2.0_f64).powi(exp as i32)
        }
    };
    Interval::new(scale(lhs.lo, rhs.lo), scale(lhs.hi, rhs.hi))
}

/// Abstract a cast: float targets preserve the interval (taint as
/// floaty), integer targets clamp into the target's range when the
/// value provably fits, and widen to the full target range otherwise
/// (a wrapping cast always lands inside the type's range, so that is
/// still sound).
fn apply_cast(v: AbsVal, target: &str) -> AbsVal {
    if target == "f64" || target == "f32" {
        let mut out = v;
        out.floaty = true;
        return out;
    }
    for (name, lo, hi) in NARROW_TARGETS {
        if name == target {
            let iv = if v.iv.lo >= lo && v.iv.hi <= hi {
                v.iv
            } else {
                Interval::new(lo, hi)
            };
            return refine(AbsVal {
                iv,
                sign: Sign::Unknown,
                dim: v.dim,
                floaty: false,
            });
        }
    }
    if INT_TARGETS.contains(&target) {
        // u64/usize/i64: wide enough for every counter here; an
        // integer cast truncates toward zero, staying inside the hull.
        let mut out = v;
        out.floaty = false;
        if target.starts_with('u') && !out.iv.is_nonneg() {
            out.iv = Interval::TOP;
            out.sign = Sign::Unknown;
        }
        return out;
    }
    AbsVal::top()
}

/// Abstract a known method call; unknown methods conservatively
/// return `TOP` (method summaries stay out of divisor reasoning so a
/// misresolved name can never manufacture a finding).
fn apply_method(v: AbsVal, name: &str, args: &[AbsVal]) -> AbsVal {
    let arg = |i: usize| -> AbsVal { args.get(i).cloned().unwrap_or_else(AbsVal::top) };
    match name {
        "max" => refine(AbsVal {
            iv: v.iv.max_op(arg(0).iv),
            sign: Sign::Unknown,
            dim: v.dim,
            floaty: v.floaty || arg(0).floaty,
        }),
        "min" => refine(AbsVal {
            iv: v.iv.min_op(arg(0).iv),
            sign: Sign::Unknown,
            dim: v.dim,
            floaty: v.floaty || arg(0).floaty,
        }),
        "clamp" => refine(AbsVal {
            iv: v.iv.clamp_op(arg(0).iv, arg(1).iv),
            sign: Sign::Unknown,
            dim: v.dim,
            floaty: v.floaty,
        }),
        "abs" => refine(AbsVal {
            iv: v.iv.abs_op(),
            sign: Sign::Unknown,
            dim: v.dim,
            floaty: v.floaty,
        }),
        "sqrt" => AbsVal::counter(None),
        "len" => AbsVal::counter(None),
        "get" | "clone" | "copied" | "into" => v,
        "saturating_add" => refine(AbsVal {
            iv: v.iv.add(arg(0).iv),
            sign: v.sign.add(arg(0).sign),
            dim: v.dim,
            floaty: v.floaty,
        }),
        "saturating_sub" => {
            // Unsigned saturating subtraction floors at zero.
            let iv = v.iv.sub(arg(0).iv).max_op(Interval::point(0.0));
            refine(AbsVal {
                iv,
                sign: Sign::NonNeg,
                dim: v.dim,
                floaty: v.floaty,
            })
        }
        "saturating_mul" => refine(AbsVal {
            iv: v.iv.mul(arg(0).iv),
            sign: v.sign.mul(arg(0).sign),
            dim: v.dim,
            floaty: v.floaty,
        }),
        "as_micros" => time_val(v, Unit::Micros),
        "as_millis" => time_val(v, Unit::Millis),
        "as_secs" => time_val(v, Unit::Secs),
        "as_secs_f64" => {
            let mut out = AbsVal::counter(Some(Dim::Time(Unit::Secs)));
            out.floaty = true;
            out
        }
        "as_mib_f64" => {
            let mut out = AbsVal::counter(None);
            out.floaty = true;
            out
        }
        _ => AbsVal::top(),
    }
}

fn time_val(_recv: AbsVal, unit: Unit) -> AbsVal {
    AbsVal::counter(Some(Dim::Time(unit)))
}

/// Abstract a bare (single-segment) call via the function summaries;
/// qualified paths model the `ff_base` constructors and stay `TOP`
/// otherwise.
fn call_val(name: &str, args: &[AbsVal], sums: &Sums) -> AbsVal {
    let arg = |i: usize| -> AbsVal { args.get(i).cloned().unwrap_or_else(AbsVal::top) };
    let last = name.rsplit("::").next().unwrap_or(name);
    if name == "Bytes" {
        let mut v = arg(0);
        v.dim = Some(Dim::Bytes);
        return v;
    }
    if name == "Joules" || name == "Watts" {
        let mut v = arg(0);
        if name == "Joules" {
            v.dim = Some(Dim::Joules);
        }
        return v;
    }
    if name.starts_with("Dur::from_") || name.starts_with("SimTime::from_") {
        let unit = match last {
            "from_micros" => Some(Unit::Micros),
            "from_millis" => Some(Unit::Millis),
            "from_secs" | "from_secs_f64" => Some(Unit::Secs),
            _ => None,
        };
        let mut v = arg(0);
        v.dim = unit.map(Dim::Time);
        return v;
    }
    if name == "u64::MAX" {
        return AbsVal::of_interval(Interval::point(u64::MAX as f64));
    }
    if !name.contains("::") {
        if let Some(iv) = sums.get(name) {
            return AbsVal::of_interval(*iv);
        }
    }
    AbsVal::top()
}

/// Abstract a plain identifier: environment, constant registry (both
/// already folded into `env`), `MAX`/`MIN` associated consts, then the
/// dimension-suffix heuristic.
fn ident_val(name: &str, env: &Env) -> AbsVal {
    let last = name.rsplit("::").next().unwrap_or(name);
    if let Some(v) = env.get(name).or_else(|| env.get(last)) {
        return v.clone();
    }
    match name {
        "u64::MAX" => return AbsVal::of_interval(Interval::point(u64::MAX as f64)),
        "u32::MAX" => return AbsVal::of_interval(Interval::point(u32::MAX as f64)),
        "f64::INFINITY" => return AbsVal::of_interval(Interval::point(f64::INFINITY)),
        _ => {}
    }
    field_val(last)
}

/// Abstract an identifier or field by its name alone.
fn field_val(name: &str) -> AbsVal {
    let dim = dim_of_name(name);
    if dim.is_some() || is_nonneg_name(name) {
        AbsVal::counter(dim)
    } else {
        AbsVal::top()
    }
}

fn eval_slice(src: &str, env: &Env, sums: &Sums) -> AbsVal {
    Eval::new(src, env, sums).expr()
}

/// Evaluate a single expression against a constant table. Public so
/// the soundness property test can compare a concrete evaluation of a
/// random expression against the inferred interval.
pub fn expr_interval(expr: &str, consts: &BTreeMap<String, f64>) -> Interval {
    let env: Env = consts
        .iter()
        .map(|(k, v)| (k.clone(), AbsVal::point(*v, v.fract().abs() > 0.0)))
        .collect();
    let sums = Sums::new();
    eval_slice(expr, &env, &sums).iv
}

// ---------------------------------------------------------------------
// Statement walking and function summaries
// ---------------------------------------------------------------------

/// `let [mut] name [: ty] = rhs;` → `(name, rhs)`.
fn split_let(code: &str) -> Option<(&str, &str)> {
    let rest = code.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let b = rest.as_bytes();
    let mut end = 0;
    while end < b.len() && is_ident_byte(b[end]) {
        end += 1;
    }
    if end == 0 {
        return None;
    }
    let name = &rest[..end];
    if name.starts_with(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    let tail = &rest[end..];
    let eq = find_plain_eq(tail)?;
    let rhs = tail.get(eq + 1..)?.trim().trim_end_matches(';');
    Some((name, rhs))
}

/// Position of a plain `=` (not `==`, `<=`, `>=`, `!=`, `+=`, ...).
fn find_plain_eq(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'=' {
            continue;
        }
        let prev_ok = i == 0
            || !matches!(
                b[i - 1],
                b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%'
            );
        let next_ok = i + 1 >= b.len() || b[i + 1] != b'=';
        if prev_ok && next_ok {
            return Some(i);
        }
    }
    None
}

/// `lhs op= rhs;` for `+=`/`-=`/`*=` → `(lhs, op, rhs)`.
fn split_compound(code: &str) -> Option<(&str, u8, &str)> {
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if (c == b'+' || c == b'-' || c == b'*') && i + 1 < b.len() && b[i + 1] == b'=' {
            if i + 2 < b.len() && b[i + 2] == b'=' {
                return None;
            }
            let lhs = code.get(..i)?.trim();
            let rhs = code.get(i + 2..)?.trim().trim_end_matches(';');
            if lhs.is_empty()
                || !lhs
                    .bytes()
                    .all(|x| is_ident_byte(x) || x == b'.' || x == b':')
            {
                return None;
            }
            return Some((lhs, c, rhs));
        }
    }
    None
}

/// Last `.`-separated segment of a field path (`self.disk_bytes` →
/// `disk_bytes`).
fn last_segment(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// First meaningful path segment of an expression slice, for guard
/// matching (`trace.len() as u64` → `trace`, `self.x` → `x`).
fn root_ident(slice: &str) -> &str {
    let b = slice.as_bytes();
    let mut i = 0;
    while i < b.len() && !(b[i].is_ascii_alphabetic() || b[i] == b'_') {
        if b[i].is_ascii_digit() {
            return "";
        }
        i += 1;
    }
    let start = i;
    while i < b.len() && is_ident_byte(b[i]) {
        i += 1;
    }
    let seg = slice.get(start..i).unwrap_or("");
    if seg == "self" {
        let rest = slice.get(i..).unwrap_or("");
        if let Some(tail) = rest.strip_prefix('.') {
            return root_ident(tail);
        }
    }
    seg
}

/// Extract the operand slice to the *right* of position `from` (a
/// divisor): a primary plus its postfix chain (`.calls`, `as ty`, `?`).
fn operand_right(code: &str, from: usize) -> &str {
    let b = code.as_bytes();
    let mut i = from;
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    let start = i;
    if i < b.len() && b[i] == b'-' {
        i += 1;
    }
    loop {
        if i >= b.len() {
            break;
        }
        let c = b[i];
        if c == b'(' {
            let mut depth = 1usize;
            i += 1;
            while i < b.len() && depth > 0 {
                match b[i] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
        } else if is_ident_byte(c) || c == b':' {
            i += 1;
        } else if c == b'.' && i + 1 < b.len() && (is_ident_byte(b[i + 1]) || b[i + 1] == b'(') {
            i += 1;
        } else if c == b'?' {
            i += 1;
        } else if c == b' '
            && code
                .get(i..)
                .map(|r| r.starts_with(" as "))
                .unwrap_or(false)
        {
            i += 4;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
        } else {
            break;
        }
    }
    code.get(start..i).unwrap_or("").trim()
}

/// Extract the operand slice to the *left* of position `to` (a cast
/// operand): walks back over one postfix chain.
fn operand_left(code: &str, to: usize) -> &str {
    let b = code.as_bytes();
    let mut i = to;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    loop {
        if i == 0 {
            break;
        }
        let c = b[i - 1];
        if c == b')' {
            let mut depth = 1usize;
            i -= 1;
            while i > 0 && depth > 0 {
                match b[i - 1] {
                    b')' => depth += 1,
                    b'(' => depth -= 1,
                    _ => {}
                }
                i -= 1;
            }
        } else if is_ident_byte(c) || c == b'.' || c == b':' || c == b'?' {
            i -= 1;
        } else {
            break;
        }
    }
    code.get(i..end).unwrap_or("").trim()
}

/// Does the function's body text as a whole guard `root` against zero?
fn guarded(fn_text: &str, root: &str) -> bool {
    if root.is_empty() {
        return false;
    }
    let patterns = [
        format!("{root} == 0"),
        format!("{root} != 0"),
        format!("{root} > 0"),
        format!("{root} >= 1"),
        format!("{root}.is_empty"),
        format!("{root}.is_zero"),
        format!("{root} <= 0"),
    ];
    patterns.iter().any(|p| fn_text.contains(p.as_str()))
}

/// Divisor clamped with an explicit zero floor (`.max(0)` / `.max(0.0)`)?
fn zero_floor_clamp(slice: &str) -> bool {
    for pat in [".max(0)", ".max(0.0)", ".max(0 ", ".max(0.0 "] {
        if slice.contains(pat) {
            return true;
        }
    }
    false
}

/// Environment for one function: Table 1/2 constants plus any
/// dimension-suffixed parameters (non-negative physical quantities).
fn base_env(ctab: &BTreeMap<String, f64>, item: &Item) -> Env {
    let mut env: Env = ctab
        .iter()
        .map(|(k, v)| (k.clone(), AbsVal::point(*v, v.fract().abs() > 0.0)))
        .collect();
    for p in &item.params {
        if let Some(dim) = dim_of_name(p) {
            env.insert(p.clone(), AbsVal::counter(Some(dim)));
        }
    }
    env
}

/// Walk one function's body, maintaining the abstract environment and
/// yielding each (0-based line index, code, env-before-line) to `sink`.
fn walk_fn<F: FnMut(usize, &str, &Env)>(
    file: &SourceFile,
    item: &Item,
    ctab: &BTreeMap<String, f64>,
    sums: &Sums,
    sink: &mut F,
) -> Env {
    let mut env = base_env(ctab, item);
    let (lo, hi) = body_range(item);
    for idx in lo..hi {
        let Some(line) = file.lines.get(idx) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if code.is_empty() {
            continue;
        }
        sink(idx, code, &env);
        if let Some((name, rhs)) = split_let(code) {
            let v = refine(eval_slice(rhs, &env, sums));
            let v = match dim_of_name(name) {
                Some(d) if v.dim.is_none() => AbsVal { dim: Some(d), ..v },
                _ => v,
            };
            env.insert(name.to_owned(), v);
        } else if let Some((lhs, op, rhs)) = split_compound(code) {
            let name = last_segment(lhs);
            if let Some(old) = env.get(name).cloned() {
                let rv = eval_slice(rhs, &env, sums);
                let next = match op {
                    b'+' => old.iv.add(rv.iv),
                    b'-' => old.iv.sub(rv.iv),
                    _ => old.iv.mul(rv.iv),
                };
                // Accumulators run inside loops the line walk cannot
                // see; widen so one abstract pass covers every trip.
                let widened = old.iv.widen(old.iv.join(next));
                env.insert(
                    name.to_owned(),
                    refine(AbsVal {
                        iv: widened,
                        sign: Sign::Unknown,
                        dim: old.dim,
                        floaty: old.floaty,
                    }),
                );
            }
        } else if let Some(eq) = find_plain_eq(code) {
            let lhs = code.get(..eq).map(str::trim).unwrap_or("");
            if !lhs.is_empty() && lhs.bytes().all(is_ident_byte) {
                if let Some(old) = env.get(lhs).cloned() {
                    let rhs = code
                        .get(eq + 1..)
                        .unwrap_or("")
                        .trim()
                        .trim_end_matches(';');
                    let rv = refine(eval_slice(rhs, &env, sums));
                    env.insert(lhs.to_owned(), old.join(&rv));
                }
            }
        }
    }
    env
}

/// 0-based line range of a function's body interior.
fn body_range(item: &Item) -> (usize, usize) {
    if item.body_start == 0 || item.body_end <= item.body_start {
        (item.decl_line.saturating_sub(1), item.decl_line)
    } else {
        (item.body_start, item.body_end.saturating_sub(1))
    }
}

/// Candidate return expressions of a function: `return X;` lines plus
/// the tail expression (single-line bodies included).
fn return_exprs<'a>(file: &'a SourceFile, item: &Item) -> Vec<&'a str> {
    let mut out = Vec::new();
    if item.body_start != 0 && item.body_start == item.body_end {
        if let Some(line) = file.lines.get(item.body_start.saturating_sub(1)) {
            if let (Some(open), Some(close)) = (line.code.find('{'), line.code.rfind('}')) {
                if open + 1 < close {
                    if let Some(inner) = line.code.get(open + 1..close) {
                        let inner = inner.trim();
                        if !inner.is_empty() {
                            out.push(inner);
                        }
                    }
                }
            }
        }
        return out;
    }
    let (lo, hi) = body_range(item);
    let mut tail: Option<&str> = None;
    for idx in lo..hi {
        let Some(line) = file.lines.get(idx) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        let code = line.code.trim();
        if code.is_empty() {
            continue;
        }
        if let Some(rest) = code.strip_prefix("return ") {
            out.push(rest.trim_end_matches(';'));
        }
        if !code.ends_with(';') && !code.ends_with('{') && !code.ends_with('}') {
            tail = Some(code);
        } else {
            tail = None;
        }
    }
    if let Some(t) = tail {
        out.push(t);
    }
    out
}

/// One summary round: evaluate every library function's return
/// expressions under `prev` summaries.
fn summary_round(
    sources: &[SourceFile],
    trees: &[ItemTree],
    ctab: &BTreeMap<String, f64>,
    prev: &Sums,
) -> Sums {
    let mut next = Sums::new();
    for (file, tree) in sources.iter().zip(trees) {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (_, item) in tree.fns() {
            if item.in_test {
                continue;
            }
            let env = walk_fn(file, item, ctab, prev, &mut |_, _, _| {});
            let mut joined: Option<Interval> = None;
            for expr in return_exprs(file, item) {
                let v = eval_slice(expr, &env, prev);
                joined = Some(match joined {
                    Some(j) => j.join(v.iv),
                    None => v.iv,
                });
            }
            let Some(iv) = joined else { continue };
            if iv.is_top() {
                continue;
            }
            let entry = next.entry(item.name.clone()).or_insert(iv);
            *entry = entry.join(iv);
        }
    }
    next
}

/// Two-round descending fixpoint over function return intervals. Round
/// one is computed with every call abstracted to `TOP` (sound); round
/// two substitutes round one's summaries (still sound, tighter or
/// equal), so the second round is the result.
fn build_summaries(
    sources: &[SourceFile],
    trees: &[ItemTree],
    ctab: &BTreeMap<String, f64>,
) -> Sums {
    let round1 = summary_round(sources, trees, ctab, &Sums::new());
    summary_round(sources, trees, ctab, &round1)
}

/// Per-function return intervals, qualified as `crate::fn_name`. Public
/// for the golden interval-facts test.
pub fn fn_summaries(sources: &[SourceFile]) -> BTreeMap<String, Interval> {
    let trees = items::build(sources);
    let ctab = consts::const_table(sources);
    let bare = build_summaries(sources, &trees, &ctab);
    let mut out = BTreeMap::new();
    for (file, tree) in sources.iter().zip(&trees) {
        if file.kind != FileKind::Lib {
            continue;
        }
        for (_, item) in tree.fns() {
            if let Some(iv) = bare.get(&item.name) {
                out.insert(format!("{}::{}", file.crate_name, item.name), *iv);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule families
// ---------------------------------------------------------------------

/// Run the wave-4 families over the workspace.
pub(crate) fn analyze(sources: &[SourceFile], trees: &[ItemTree]) -> Vec<Finding> {
    let ctab = consts::const_table(sources);
    let sums = build_summaries(sources, trees, &ctab);
    let mut out = Vec::new();
    for (file, tree) in sources.iter().zip(trees) {
        if file.kind != FileKind::Lib {
            continue;
        }
        let arith = ARITH_CRATES.contains(&file.crate_name.as_str());
        let energy = ENERGY_CRATES.contains(&file.crate_name.as_str());
        if !arith && !energy {
            continue;
        }
        for (_, item) in tree.fns() {
            if item.in_test {
                continue;
            }
            let fn_text = fn_body_text(file, item);
            let mut sink = |idx: usize, code: &str, env: &Env| {
                if arith {
                    check_divisions(file, item, idx, code, env, &sums, &fn_text, &mut out);
                    check_casts(file, idx, code, env, &sums, &mut out);
                    check_counters(file, idx, code, &mut out);
                }
                if energy {
                    check_energy_line(file, idx, code, env, &sums, &mut out);
                }
            };
            walk_fn(file, item, &ctab, &sums, &mut sink);
            if energy {
                check_drain_fn(file, item, &mut out);
            }
        }
    }
    out.extend(timeout_order(sources, &ctab));
    out
}

fn fn_body_text(file: &SourceFile, item: &Item) -> String {
    let (lo, hi) = body_range(item);
    let mut text = String::new();
    for idx in lo..hi.min(file.lines.len()) {
        text.push_str(&file.lines[idx].code);
        text.push('\n');
    }
    text
}

fn push(
    out: &mut Vec<Finding>,
    rule: Rule,
    file: &SourceFile,
    idx: usize,
    token: String,
    message: String,
) {
    out.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line: idx + 1,
        token,
        message,
    });
}

/// arith-safety: division-by-zero freedom.
fn check_divisions(
    file: &SourceFile,
    _item: &Item,
    idx: usize,
    code: &str,
    env: &Env,
    sums: &Sums,
    fn_text: &str,
    out: &mut Vec<Finding>,
) {
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'/' {
            continue;
        }
        if i + 1 < b.len() && (b[i + 1] == b'=' || b[i + 1] == b'/') {
            continue;
        }
        if i > 0 && b[i - 1] == b'/' {
            continue;
        }
        let slice = operand_right(code, i + 1);
        if slice.is_empty() {
            continue;
        }
        let dv = eval_slice(slice, env, sums);
        let root = root_ident(slice);
        let zero_point = dv.iv.is_point() && dv.iv.lo.abs() < 1e-12;
        let clamped_to_zero = zero_floor_clamp(slice);
        let may_be_zero = dv.iv.contains_zero() && !dv.iv.is_top();
        if zero_point {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("div {root}"),
                "division by a provably-zero divisor".to_owned(),
            );
        } else if clamped_to_zero {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("div {root}"),
                format!(
                    "divisor `{slice}` is clamped with a zero floor, so zero is \
                     reachable; raise the floor or use ff_base::checked::ratio"
                ),
            );
        } else if may_be_zero && !guarded(fn_text, root) {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("div {root}"),
                format!(
                    "divisor `{slice}` has interval {} which contains zero and no \
                     zero-guard is visible; guard it or use ff_base::checked::ratio",
                    dv.iv
                ),
            );
        }
    }
}

/// arith-safety: lossy `as` casts.
fn check_casts(
    file: &SourceFile,
    idx: usize,
    code: &str,
    env: &Env,
    sums: &Sums,
    out: &mut Vec<Finding>,
) {
    let mut search = 0;
    while let Some(rel) = code.get(search..).and_then(|r| r.find(" as ")) {
        let pos = search + rel;
        search = pos + 4;
        let target: String = code
            .get(pos + 4..)
            .unwrap_or("")
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !INT_TARGETS.contains(&target.as_str()) {
            continue;
        }
        let operand = operand_left(code, pos);
        if operand.is_empty() {
            continue;
        }
        let ov = eval_slice(operand, env, sums);
        if ov.floaty {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("as {target} (float)"),
                format!(
                    "float-valued `{operand}` truncated by `as {target}`; use \
                     ff_base::checked::f64_to_u64 (or round explicitly)"
                ),
            );
            continue;
        }
        for (name, lo, hi) in NARROW_TARGETS {
            if name == target && !(ov.iv.lo >= lo && ov.iv.hi <= hi) {
                push(
                    out,
                    Rule::ArithSafety,
                    file,
                    idx,
                    format!("as {target}"),
                    format!(
                        "`{operand}` (interval {}) is not proven to fit `{target}`; \
                         use ff_base::checked::u64_to_u32 or a checked conversion",
                        ov.iv
                    ),
                );
            }
        }
    }
}

/// arith-safety: unchecked arithmetic on `_bytes`/`_us`-style counters.
fn check_counters(file: &SourceFile, idx: usize, code: &str, out: &mut Vec<Finding>) {
    if let Some((lhs, op, _rhs)) = split_compound(code) {
        let seg = last_segment(lhs);
        let counter = matches!(Dim::of_ident(seg), Some(Dim::Bytes) | Some(Dim::Time(_)));
        if counter && !code.contains("saturating") {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("{seg} {}=", op as char),
                format!(
                    "unchecked `{}=` on counter `{seg}`; prefer saturating_add or \
                     an ff_base::checked helper",
                    op as char
                ),
            );
        }
    }
    // Binary `a + b` / `a * b` with *both* operands dimension-suffixed
    // counters of the same dimension (mixed dimensions are unit-flow's
    // finding, not ours).
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'+' && c != b'*' {
            continue;
        }
        if i == 0 || i + 1 >= b.len() || b[i - 1] != b' ' || b[i + 1] != b' ' {
            continue;
        }
        let left = path_before(code, i - 1);
        let right = path_after(code, i + 1);
        let (Some(ld), Some(rd)) = (
            Dim::of_ident(last_segment(left)),
            Dim::of_ident(last_segment(right)),
        ) else {
            continue;
        };
        let countable = |d: Dim| matches!(d, Dim::Bytes | Dim::Time(_));
        if ld == rd && countable(ld) {
            push(
                out,
                Rule::ArithSafety,
                file,
                idx,
                format!("{left} {} {right}", c as char),
                format!(
                    "unchecked `{}` on counters `{left}` and `{right}`; prefer \
                     saturating arithmetic",
                    c as char
                ),
            );
        }
    }
}

/// The `.`-separated ident path ending at byte `end` (exclusive).
fn path_before(code: &str, end: usize) -> &str {
    let b = code.as_bytes();
    let mut i = end;
    while i > 0 && b[i - 1] == b' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0 && (is_ident_byte(b[i - 1]) || b[i - 1] == b'.') {
        i -= 1;
    }
    code.get(i..stop).unwrap_or("").trim_matches('.')
}

/// The `.`-separated ident path starting at byte `start`.
fn path_after(code: &str, start: usize) -> &str {
    let b = code.as_bytes();
    let mut i = start;
    while i < b.len() && b[i] == b' ' {
        i += 1;
    }
    let begin = i;
    while i < b.len() && (is_ident_byte(b[i]) || b[i] == b'.') {
        i += 1;
    }
    code.get(begin..i).unwrap_or("").trim_matches('.')
}

/// energy-bounds: per-line accumulator checks.
fn check_energy_line(
    file: &SourceFile,
    idx: usize,
    code: &str,
    env: &Env,
    sums: &Sums,
    out: &mut Vec<Finding>,
) {
    if let Some((lhs, op, rhs)) = split_compound(code) {
        let seg = last_segment(lhs);
        if dim_of_name(seg) == Some(Dim::Joules) {
            if op == b'-' {
                push(
                    out,
                    Rule::EnergyBounds,
                    file,
                    idx,
                    format!("{seg} -="),
                    format!(
                        "energy accumulator `{seg}` is decremented; energy spent \
                         is monotone non-decreasing in this model"
                    ),
                );
            } else if op == b'+' {
                let rv = eval_slice(rhs, env, sums);
                if rv.iv.hi <= 0.0 {
                    push(
                        out,
                        Rule::EnergyBounds,
                        file,
                        idx,
                        format!("{seg} += nonpos"),
                        format!(
                            "`{rhs}` has interval {} (provably non-positive); an \
                             energy accumulation must add a non-negative quantity",
                            rv.iv
                        ),
                    );
                }
            }
        }
    }
    if code.contains("Joules(") {
        for arg in call_args(code, "Joules(") {
            let av = eval_slice(&arg, env, sums);
            if av.iv.is_neg() {
                push(
                    out,
                    Rule::EnergyBounds,
                    file,
                    idx,
                    "Joules(neg)".to_owned(),
                    format!(
                        "`Joules({arg})` constructs a provably-negative energy \
                         (interval {})",
                        av.iv
                    ),
                );
            }
        }
    }
}

/// energy-bounds: battery drain functions must be monotone — no
/// subtraction anywhere in an energy-returning `*drain*` body.
fn check_drain_fn(file: &SourceFile, item: &Item, out: &mut Vec<Finding>) {
    if !item.name.contains("drain") {
        return;
    }
    let sig = &item.signature;
    if !sig.contains("-> Joules") && !sig.contains("-> f64") {
        return;
    }
    let (lo, hi) = body_range(item);
    for idx in lo..hi.min(file.lines.len()) {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        if line.code.contains(" - ") {
            push(
                out,
                Rule::EnergyBounds,
                file,
                idx,
                format!("{} -", item.name),
                format!(
                    "subtraction inside drain function `{}`; battery drain must \
                     be a monotone sum of non-negative terms",
                    item.name
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// timeout-order
// ---------------------------------------------------------------------

/// Recompute T_breakeven from the constant registry and prove the §3
/// ordering `0 < T_breakeven < DISK_TIMEOUT_S < retry-clamp ceiling`,
/// plus `WNIC_PSM_TIMEOUT < T_breakeven` and ladder clamping.
fn timeout_order(sources: &[SourceFile], ctab: &BTreeMap<String, f64>) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(registry) = sources.iter().find(|f| f.rel_path == consts::REGISTRY_PATH) else {
        return out;
    };
    let anchor = |name: &str| -> usize {
        registry
            .lines
            .iter()
            .position(|l| l.code.contains(name))
            .map(|i| i + 1)
            .unwrap_or(1)
    };
    let mut fail = |line: usize, token: &str, message: String| {
        out.push(Finding {
            rule: Rule::TimeoutOrder,
            file: consts::REGISTRY_PATH.to_owned(),
            line,
            token: token.to_owned(),
            message,
        });
    };
    let needed = [
        "DISK_IDLE_POWER_W",
        "DISK_SPINDOWN_ENERGY_J",
        "DISK_SPINDOWN_TIME_MS",
        "DISK_SPINUP_ENERGY_J",
        "DISK_SPINUP_TIME_MS",
        "DISK_STANDBY_POWER_W",
        "DISK_TIMEOUT_S",
        "WNIC_PSM_TIMEOUT_MS",
    ];
    let mut vals = BTreeMap::new();
    for name in needed {
        match ctab.get(name) {
            Some(v) => {
                vals.insert(name, Interval::point(*v));
            }
            None => {
                fail(
                    1,
                    &format!("missing {name}"),
                    format!("constant registry lacks `{name}`; T_breakeven unprovable"),
                );
            }
        }
    }
    if vals.len() < needed.len() {
        return out;
    }
    let get = |n: &str| vals.get(n).copied().unwrap_or(Interval::TOP);
    let ms = Interval::point(1000.0);
    let trans = get("DISK_SPINUP_TIME_MS")
        .add(get("DISK_SPINDOWN_TIME_MS"))
        .div(ms);
    let denom = get("DISK_IDLE_POWER_W").sub(get("DISK_STANDBY_POWER_W"));
    if !denom.is_pos() {
        fail(
            anchor("DISK_IDLE_POWER_W"),
            "breakeven-undefined",
            format!(
                "idle - standby power has interval {denom}; T_breakeven is \
                 undefined unless idle draw exceeds standby draw"
            ),
        );
        return out;
    }
    let transition_cost = get("DISK_SPINUP_ENERGY_J")
        .add(get("DISK_SPINDOWN_ENERGY_J"))
        .sub(get("DISK_STANDBY_POWER_W").mul(trans));
    let breakeven = transition_cost.div(denom).max_op(trans);
    let timeout = get("DISK_TIMEOUT_S");
    if !breakeven.is_pos() {
        fail(
            anchor("DISK_SPINUP_ENERGY_J"),
            "breakeven-nonpositive",
            format!("T_breakeven interval {breakeven} is not provably positive"),
        );
    }
    if !(breakeven.hi < timeout.lo) {
        fail(
            anchor("DISK_TIMEOUT_S"),
            "breakeven-vs-timeout",
            format!(
                "cannot prove T_breakeven {breakeven} < disk idle timeout \
                 {timeout}: spinning down at the timeout would waste energy"
            ),
        );
    }
    let psm = get("WNIC_PSM_TIMEOUT_MS").div(ms);
    if !(psm.hi < breakeven.lo) {
        fail(
            anchor("WNIC_PSM_TIMEOUT_MS"),
            "psm-vs-breakeven",
            format!(
                "cannot prove WNIC PSM timeout {psm} s < disk T_breakeven \
                 {breakeven}: the CAM->PSM knee must sit below the disk knee"
            ),
        );
    }
    out.extend(ladder_checks(sources, timeout));
    out
}

/// Statically bound the outage-retry ladder: the base backoff from
/// `RetryPolicy::default`, every backoff shift `.min(..)`-clamped, and
/// `DISK_TIMEOUT_S` strictly below the clamp ceiling `backoff * 2^K`.
fn ladder_checks(sources: &[SourceFile], disk_timeout: Interval) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut backoff_ms: Option<f64> = None;
    let mut backoff_site = (String::new(), 1usize);
    let mut clamp_exp: Option<f64> = None;
    for file in sources {
        if file.crate_name != "ff-sim" || file.kind != FileKind::Lib {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            if backoff_ms.is_none() && file.rel_path.ends_with("faults.rs") {
                // `backoff: Dur::from_millis(N)` inside the Default impl.
                if code.trim_start().starts_with("backoff:") {
                    for (needle, scale) in [("Dur::from_millis(", 1.0), ("Dur::from_secs(", 1000.0)]
                    {
                        if let Some(arg) = call_args(code, needle).first() {
                            if let Some(v) = parse_num(arg) {
                                backoff_ms = Some(v * scale);
                                backoff_site = (file.rel_path.clone(), idx + 1);
                            }
                        }
                    }
                }
            }
            if code.contains("<<") && code.contains("backoff") {
                match call_args(code, ".min(").first().and_then(|a| parse_num(a)) {
                    Some(k) => {
                        clamp_exp = Some(clamp_exp.map_or(k, |e: f64| e.max(k)));
                    }
                    None => {
                        out.push(Finding {
                            rule: Rule::TimeoutOrder,
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            token: "ladder-unclamped".to_owned(),
                            message: "backoff shift without a `.min(..)` clamp: the \
                                      retry ladder is unbounded"
                                .to_owned(),
                        });
                    }
                }
            }
        }
    }
    let (Some(base_ms), Some(k)) = (backoff_ms, clamp_exp) else {
        return out;
    };
    let ceiling_s = Interval::point(base_ms / 1000.0).mul(shl_pow(k));
    if !(disk_timeout.hi < ceiling_s.lo) {
        out.push(Finding {
            rule: Rule::TimeoutOrder,
            file: backoff_site.0.clone(),
            line: backoff_site.1,
            token: "timeout-vs-ceiling".to_owned(),
            message: format!(
                "cannot prove disk idle timeout {disk_timeout} s < outage-retry \
                 clamp ceiling {ceiling_s} s (base backoff x 2^{k}); the ladder \
                 must outlast the device timeout ordering"
            ),
        });
    }
    let base_us = base_ms * 1000.0;
    if base_us * (2.0_f64).powi(k as i32) > u64::MAX as f64 {
        out.push(Finding {
            rule: Rule::TimeoutOrder,
            file: backoff_site.0,
            line: backoff_site.1,
            token: "ladder-overflow".to_owned(),
            message: format!("backoff * 2^{k} overflows the u64 microsecond ladder arithmetic"),
        });
    }
    out
}

fn shl_pow(k: f64) -> Interval {
    if !k.is_finite() || k > 63.0 || k < 0.0 {
        Interval::NON_NEG
    } else {
        Interval::point((2.0_f64).powi(k as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn env_of(pairs: &[(&str, f64)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), AbsVal::point(*v, false)))
            .collect()
    }

    #[test]
    fn evaluator_handles_arithmetic_and_methods() {
        let env = env_of(&[("a", 3.0), ("b", 4.0)]);
        let sums = Sums::new();
        let v = eval_slice("a + b * 2", &env, &sums);
        assert_eq!(v.iv, Interval::point(11.0));
        let v = eval_slice("(a - b).abs()", &env, &sums);
        assert_eq!(v.iv, Interval::point(1.0));
        let v = eval_slice("a.max(10)", &env, &sums);
        assert_eq!(v.iv, Interval::point(10.0));
        let v = eval_slice("1u64 << 16", &env, &sums);
        assert_eq!(v.iv, Interval::point(65536.0));
    }

    #[test]
    fn suffixed_idents_are_nonneg_counters() {
        let env = Env::new();
        let sums = Sums::new();
        let v = eval_slice("total_bytes", &env, &sums);
        assert!(v.iv.is_nonneg() && !v.iv.is_top());
        assert_eq!(v.dim, Some(Dim::Bytes));
        let v = eval_slice("-span_us", &env, &sums);
        assert!(v.iv.hi <= 0.0);
    }

    #[test]
    fn operand_extraction_brackets_the_right_slices() {
        let code = "let r = total_bytes / trace.len().max(1) as u64;";
        let pos = code.find('/').expect("slash");
        assert_eq!(operand_right(code, pos + 1), "trace.len().max(1) as u64");
        let cast = code.find(" as ").expect("cast");
        assert_eq!(operand_left(code, cast), "trace.len().max(1)");
        assert_eq!(root_ident("trace.len() as u64"), "trace");
        assert_eq!(root_ident("self.total_bytes as f64"), "total_bytes");
    }

    fn lib_file(src: &str) -> SourceFile {
        SourceFile {
            rel_path: "crates/ff-sim/src/x.rs".to_owned(),
            crate_name: "ff-sim".to_owned(),
            kind: FileKind::Lib,
            lines: preprocess(src),
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let sources = vec![lib_file(src)];
        let trees = items::build(&sources);
        analyze(&sources, &trees)
    }

    #[test]
    fn division_by_unguarded_counter_is_flagged() {
        let bad = run("pub fn f(n_bytes: u64, total: u64) -> f64 {\n    let r = 1.0;\n    r / n_bytes as f64\n}\n");
        assert!(bad.iter().any(|f| f.rule == Rule::ArithSafety));
        let guarded = run(
            "pub fn f(n_bytes: u64) -> f64 {\n    if n_bytes == 0 {\n        return 0.0;\n    }\n    1.0 / n_bytes as f64\n}\n",
        );
        assert!(guarded.is_empty(), "{guarded:?}");
        let clamped = run("pub fn f(n_bytes: u64) -> f64 {\n    1.0 / n_bytes.max(1) as f64\n}\n");
        assert!(clamped.is_empty(), "{clamped:?}");
    }

    #[test]
    fn zero_floor_clamp_is_always_flagged() {
        let bad = run(
            "pub fn f(xs: &[u64]) -> u64 {\n    let d = 100;\n    d / xs.len().max(0) as u64\n}\n",
        );
        assert!(bad
            .iter()
            .any(|f| f.rule == Rule::ArithSafety && f.token.contains("div")));
    }

    #[test]
    fn narrowing_and_float_casts_are_flagged() {
        let bad = run("pub fn f(x: u64) -> u32 {\n    x as u32\n}\n");
        assert!(bad.iter().any(|f| f.token == "as u32"));
        let ok = run("pub fn f(x: u64) -> u32 {\n    (x % 100) as u32\n}\n");
        assert!(ok.is_empty(), "{ok:?}");
        let trunc = run("pub fn f(b: f64) -> u64 {\n    (b * 1000.0) as u64\n}\n");
        assert!(trunc.iter().any(|f| f.token == "as u64 (float)"));
    }

    #[test]
    fn counter_arithmetic_wants_saturation() {
        let bad = run("pub fn f(&mut self, n_bytes: u64) {\n    self.total_bytes += n_bytes;\n}\n");
        assert!(bad.iter().any(|f| f.token == "total_bytes +="));
        let ok = run(
            "pub fn f(&mut self, n_bytes: u64) {\n    self.total_bytes = self.total_bytes.saturating_add(n_bytes);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bin = run("pub fn f(a_bytes: u64, b_bytes: u64) -> u64 {\n    let t = a_bytes + b_bytes;\n    t\n}\n");
        assert!(bin.iter().any(|f| f.token.contains("a_bytes + b_bytes")));
    }

    #[test]
    fn energy_rules_catch_decrement_and_negative_add() {
        let dec = run("pub fn f(&mut self) {\n    self.request_energy -= 1.0;\n}\n");
        assert!(dec.iter().any(|f| f.rule == Rule::EnergyBounds));
        let neg = run("pub fn f(&mut self, out_j: f64) {\n    self.request_energy += -out_j;\n}\n");
        assert!(neg
            .iter()
            .any(|f| f.rule == Rule::EnergyBounds && f.token.contains("nonpos")));
        let ok = run("pub fn f(&mut self, out_j: f64) {\n    self.request_energy += out_j;\n}\n");
        assert!(ok.iter().all(|f| f.rule != Rule::EnergyBounds), "{ok:?}");
    }

    #[test]
    fn drain_functions_must_be_monotone() {
        let bad = run("pub fn task_drain(&self) -> Joules {\n    self.total() - self.base\n}\n");
        assert!(bad.iter().any(|f| f.token == "task_drain -"));
        let ok = run("pub fn task_drain(&self) -> Joules {\n    self.total() + self.base\n}\n");
        assert!(ok.iter().all(|f| f.rule != Rule::EnergyBounds));
    }

    #[test]
    fn summaries_resolve_bare_calls_in_two_rounds() {
        let src =
            "pub fn base() -> f64 {\n    7.0\n}\npub fn scaled() -> f64 {\n    base() * 3.0\n}\n";
        let sources = vec![lib_file(src)];
        let sums = fn_summaries(&sources);
        assert_eq!(
            sums.get("ff-sim::base").copied(),
            Some(Interval::point(7.0))
        );
        assert_eq!(
            sums.get("ff-sim::scaled").copied(),
            Some(Interval::point(21.0))
        );
    }
}
