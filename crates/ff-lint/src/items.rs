//! Brace-aware item-tree recovery on top of the preprocessed lines.
//!
//! [`crate::scan::preprocess`] gives us code with literals and comments
//! blanked; this module walks those lines once per file, tracking brace
//! depth, and recovers the *item skeleton*: `fn`/`impl`/`mod`/`enum`/
//! `struct`/`trait` boundaries, visibility, flattened signatures, and
//! (for enums) the variant list. The semantic analyses — the call graph,
//! the FSM model checker and the unit-flow pass — all consume this tree
//! instead of re-deriving structure from raw lines.
//!
//! The parser is approximate by design, leaning on the workspace being
//! rustfmt-formatted: declarations start a line (after visibility), the
//! `fn` name sits on the declaration line, and the body's `{` follows
//! the signature. Those assumptions are all conservative for the
//! analyses built on top: a missed item means a missed *finding*, never
//! a spurious pass of a pinned-at-zero family, because the families that
//! must stay at zero also assert the items they audit were found.

use crate::scan::SourceFile;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Mod,
    Enum,
    Struct,
    Trait,
}

/// Declared visibility. Only plain `pub` counts as public API surface;
/// `pub(crate)`/`pub(super)` are scoped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    Pub,
    Scoped,
    Private,
}

/// One recovered item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Simple name (`service`, `DiskModel`, `tests`). For an `impl`
    /// block this is the implemented *type*; [`Item::trait_name`] holds
    /// the trait when it is a trait impl.
    pub name: String,
    /// Trait implemented by an `impl Trait for Type` block.
    pub trait_name: Option<String>,
    pub vis: Vis,
    /// Flattened declaration text up to (not including) the body brace.
    pub signature: String,
    /// Parameter names of a `fn`, in order, `self` excluded.
    pub params: Vec<String>,
    /// Enum variant names, declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the declaration keyword.
    pub decl_line: usize,
    /// 1-based line of the body's opening `{` (== decl_line for
    /// single-line items; 0 for braceless items such as `struct X;`).
    pub body_start: usize,
    /// 1-based line of the closing `}` (decl_line for braceless items).
    pub body_end: usize,
    /// Index of the enclosing item in the file's arena, if nested.
    pub parent: Option<usize>,
    /// True when the declaration sits in `#[cfg(test)]`/`#[test]` scope.
    pub in_test: bool,
}

impl Item {
    /// `Type::name` for methods and associated fns, plain name otherwise.
    pub fn qualified_name(&self, arena: &[Item]) -> String {
        match self.parent.and_then(|p| arena.get(p)) {
            Some(parent) if parent.kind == ItemKind::Impl || parent.kind == ItemKind::Trait => {
                format!("{}::{}", parent.name, self.name)
            }
            _ => self.name.clone(),
        }
    }

    /// Is this fn declared inside an `impl`/`trait` block?
    pub fn is_method(&self, arena: &[Item]) -> bool {
        self.parent
            .and_then(|p| arena.get(p))
            .map(|p| matches!(p.kind, ItemKind::Impl | ItemKind::Trait))
            .unwrap_or(false)
    }

    /// Public through the item's own `pub`, or through the trait for a
    /// method in an `impl Trait for Type` block (the trait is the API).
    pub fn is_api(&self, arena: &[Item]) -> bool {
        if self.vis == Vis::Pub {
            return true;
        }
        self.parent
            .and_then(|p| arena.get(p))
            .map(|p| p.kind == ItemKind::Impl && p.trait_name.is_some())
            .unwrap_or(false)
    }
}

/// The recovered item arena of one file, declaration order.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    pub items: Vec<Item>,
}

impl ItemTree {
    /// All fns, with arena indices.
    pub fn fns(&self) -> impl Iterator<Item = (usize, &Item)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, i)| i.kind == ItemKind::Fn)
    }

    /// Look up an enum by name.
    pub fn enum_named(&self, name: &str) -> Option<&Item> {
        self.items
            .iter()
            .find(|i| i.kind == ItemKind::Enum && i.name == name)
    }

    /// The innermost fn whose body spans `line` (1-based).
    pub fn fn_at(&self, line: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn && i.decl_line <= line && line <= i.body_end)
            .max_by_key(|i| i.decl_line)
    }
}

/// Build the item tree for every source file, parallel to `sources`.
pub fn build(sources: &[SourceFile]) -> Vec<ItemTree> {
    sources.iter().map(parse_file).collect()
}

/// A declaration whose body brace has not been seen yet.
struct Pending {
    kind: ItemKind,
    vis: Vis,
    signature: String,
    decl_line: usize,
    in_test: bool,
    /// Unclosed `(`/`<` in the signature so far; the body `{` only
    /// counts once these are balanced (`where` clauses, generic bounds
    /// and argument lists may span lines).
    paren: i64,
    angle: i64,
}

/// An item whose body `{` has been seen but not its `}`.
struct Open {
    arena_idx: usize,
    depth: i64,
}

/// What one signature character asks the outer loop to do.
enum SigStep {
    /// Keep accumulating.
    Consume,
    /// `{` at paren depth 0 — the body opens here.
    OpenBody,
    /// `;` at depth 0 — a braceless item ends here.
    CloseBraceless,
}

fn parse_file(file: &SourceFile) -> ItemTree {
    let mut items: Vec<Item> = Vec::new();
    let mut open: Vec<Open> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: Option<Pending> = None;

    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = line.code.as_str();
        let depth_at_start = depth;

        // Split the line at the declaration start so braces before it
        // (e.g. a closing `}` sharing the line) update depth first.
        let decl_at = if pending.is_none() {
            detect_decl(code)
        } else {
            None
        };
        let (head, tail) = match decl_at {
            Some((pos, kind, vis)) => {
                pending = Some(Pending {
                    kind,
                    vis,
                    signature: String::new(),
                    decl_line: line_no,
                    in_test: line.in_test,
                    paren: 0,
                    angle: 0,
                });
                (&code[..pos], &code[pos..])
            }
            None => ("", code),
        };

        for c in head.chars() {
            track_brace(c, &mut depth, &mut open, &mut items, line_no);
        }

        for c in tail.chars() {
            let step = match pending.as_mut() {
                Some(p) => sig_step(p, c),
                None => {
                    track_brace(c, &mut depth, &mut open, &mut items, line_no);
                    continue;
                }
            };
            match (step, pending.take()) {
                (SigStep::OpenBody, Some(p)) => {
                    let arena_idx = items.len();
                    let item = finish_item(p, line_no, open.last(), &items);
                    items.push(item);
                    depth += 1;
                    open.push(Open { arena_idx, depth });
                }
                (SigStep::CloseBraceless, Some(p)) => {
                    let mut item = finish_item(p, 0, open.last(), &items);
                    item.body_end = item.decl_line;
                    items.push(item);
                }
                (SigStep::Consume, p) => pending = p,
                (_, None) => {}
            }
        }
        if let Some(p) = pending.as_mut() {
            p.signature.push(' ');
        }

        // Enum variants: first token of body lines one level inside.
        // Depth is taken at line *start* so a struct variant whose `{…}`
        // spans lines (`DeviceState {` … `},`) still counts — by line
        // end its own brace has already deepened `depth`.
        if pending.is_none() {
            if let Some(o) = open.last() {
                if items[o.arena_idx].kind == ItemKind::Enum && depth_at_start == o.depth {
                    if let Some(v) = leading_ident(code) {
                        if items[o.arena_idx].body_start < line_no {
                            items[o.arena_idx].variants.push(v.to_owned());
                        }
                    }
                }
            }
        }
    }
    ItemTree { items }
}

/// Feed one character into a pending signature; report whether the body
/// opens or the item ends braceless here.
fn sig_step(p: &mut Pending, c: char) -> SigStep {
    match c {
        '(' => p.paren += 1,
        ')' => p.paren -= 1,
        '<' => p.angle += 1,
        '>' => {
            // `->` is not a closing angle bracket.
            if !p.signature.ends_with('-') {
                p.angle = (p.angle - 1).max(0);
            }
        }
        '{' if p.paren == 0 => return SigStep::OpenBody,
        ';' if p.paren == 0 && p.angle <= 0 => return SigStep::CloseBraceless,
        _ => {}
    }
    p.signature.push(c);
    SigStep::Consume
}

/// Update brace depth outside any pending declaration, closing items
/// whose depth unwinds.
fn track_brace(c: char, depth: &mut i64, open: &mut Vec<Open>, items: &mut [Item], line_no: usize) {
    match c {
        '{' => *depth += 1,
        '}' => {
            if let Some(o) = open.last() {
                if o.depth == *depth {
                    items[o.arena_idx].body_end = line_no;
                    open.pop();
                }
            }
            *depth -= 1;
        }
        _ => {}
    }
}

/// Complete a pending declaration into an [`Item`].
fn finish_item(p: Pending, body_line: usize, enclosing: Option<&Open>, items: &[Item]) -> Item {
    let parent = enclosing.map(|o| o.arena_idx);
    let in_test = p.in_test || parent.map(|i| items[i].in_test).unwrap_or(false);
    let (name, trait_name) = item_name(p.kind, &p.signature);
    let params = if p.kind == ItemKind::Fn {
        fn_params(&p.signature)
    } else {
        Vec::new()
    };
    Item {
        kind: p.kind,
        name,
        trait_name,
        vis: p.vis,
        signature: p.signature.split_whitespace().collect::<Vec<_>>().join(" "),
        params,
        variants: Vec::new(),
        decl_line: p.decl_line,
        body_start: body_line,
        body_end: body_line,
        parent,
        in_test,
    }
}

const DECLS: [(&str, ItemKind); 6] = [
    ("fn", ItemKind::Fn),
    ("impl", ItemKind::Impl),
    ("mod", ItemKind::Mod),
    ("enum", ItemKind::Enum),
    ("struct", ItemKind::Struct),
    ("trait", ItemKind::Trait),
];

/// Find a declaration keyword opening an item on this line. Returns the
/// byte position of the keyword (not the visibility prefix) so brace
/// tracking can process everything before it.
fn detect_decl(code: &str) -> Option<(usize, ItemKind, Vis)> {
    let trimmed = code.trim_start();
    let indent = code.len() - trimmed.len();
    // Strip qualifiers that may precede the keyword.
    let mut rest = trimmed;
    let mut vis = Vis::Private;
    loop {
        if let Some(r) = rest.strip_prefix("pub(") {
            vis = Vis::Scoped;
            rest = r.split_once(')').map(|(_, r)| r).unwrap_or("").trim_start();
        } else if let Some(r) = strip_word(rest, "pub") {
            vis = Vis::Pub;
            rest = r;
        } else if let Some(r) = strip_word(rest, "const")
            .or_else(|| strip_word(rest, "async"))
            .or_else(|| strip_word(rest, "unsafe"))
            .or_else(|| strip_word(rest, "extern"))
            .or_else(|| strip_word(rest, "default"))
        {
            rest = r;
        } else {
            break;
        }
    }
    for (kw, kind) in DECLS {
        if let Some(after) = strip_word(rest, kw) {
            // `mod x;` handled via the `;` path; `impl<`/`fn name` both
            // continue with non-ident or space — strip_word guarantees
            // the keyword boundary already.
            if kind == ItemKind::Struct && !after.trim_start().starts_with(char::is_alphabetic) {
                continue;
            }
            let pos = indent + (trimmed.len() - rest.len());
            return Some((pos, kind, vis));
        }
    }
    None
}

/// `strip_word("fn foo", "fn") == Some("foo")`, with a word boundary.
fn strip_word<'a>(s: &'a str, word: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(word)?;
    match rest.chars().next() {
        Some(c) if c.is_alphanumeric() || c == '_' => None,
        Some(c) if c == ' ' || c == '<' || c == '(' => Some(rest.trim_start()),
        _ => None,
    }
}

/// Extract the item name (and trait for trait impls) from a signature.
/// The signature text starts at the declaration keyword itself.
fn item_name(kind: ItemKind, sig: &str) -> (String, Option<String>) {
    let kw = match kind {
        ItemKind::Fn => "fn",
        ItemKind::Impl => "impl",
        ItemKind::Mod => "mod",
        ItemKind::Enum => "enum",
        ItemKind::Struct => "struct",
        ItemKind::Trait => "trait",
    };
    let sig = sig.trim();
    let sig = sig.strip_prefix(kw).unwrap_or(sig).trim_start();
    match kind {
        ItemKind::Impl => {
            // `<T> Trait<A> for Type<T>` | `<T> Type<T>` — generics stripped.
            let body = skip_generics(sig);
            match split_top_level(body, " for ") {
                Some((tr, ty)) => (type_head(ty), Some(type_head(tr))),
                None => (type_head(body), None),
            }
        }
        _ => {
            let name: String = sig
                .chars()
                .take_while(|&c| c.is_alphanumeric() || c == '_')
                .collect();
            (name, None)
        }
    }
}

/// Skip a leading `<...>` generic parameter list.
fn skip_generics(s: &str) -> &str {
    let s = s.trim_start();
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i64;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

/// Split on a separator occurring outside `<...>` nesting.
fn split_top_level<'a>(s: &'a str, sep: &str) -> Option<(&'a str, &'a str)> {
    let mut depth = 0i64;
    let bytes = s.as_bytes();
    let sep_bytes = sep.as_bytes();
    let mut i = 0;
    while i + sep_bytes.len() <= bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            _ => {}
        }
        if depth == 0 && &bytes[i..i + sep_bytes.len()] == sep_bytes {
            return Some((&s[..i], &s[i + sep_bytes.len()..]));
        }
        i += 1;
    }
    None
}

/// Last path segment of a type, generics and references stripped.
fn type_head(s: &str) -> String {
    let s = s.trim().trim_start_matches('&').trim_start_matches("mut ");
    let base = s.split(['<', ' ']).next().unwrap_or(s);
    base.rsplit("::").next().unwrap_or(base).trim().to_owned()
}

/// Parameter names of a fn signature (text after the keyword).
fn fn_params(sig: &str) -> Vec<String> {
    let open = match sig.find('(') {
        Some(i) => i,
        None => return Vec::new(),
    };
    // Find the matching close paren.
    let mut depth = 0i64;
    let mut close = sig.len();
    for (i, c) in sig[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &sig[open + 1..close];
    let mut out = Vec::new();
    for part in split_args(inner) {
        let part = part.trim();
        let Some((name, _ty)) = part.split_once(':') else {
            continue; // `self`, `&mut self`
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            out.push(name.to_owned());
        }
    }
    out
}

/// Split an argument list on top-level commas (ignoring `<>`/`()`/`[]`).
pub fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

/// Leading identifier of a (variant) line, if it starts with one.
fn leading_ident(code: &str) -> Option<&str> {
    let t = code.trim_start();
    if t.starts_with('#') {
        return None;
    }
    let end = t
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    if end == 0 || !t.starts_with(|c: char| c.is_alphabetic() || c == '_') {
        return None;
    }
    match t[end..].trim_start().chars().next() {
        None | Some(',') | Some('(') | Some('{') | Some('=') => Some(&t[..end]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{preprocess, FileKind};

    fn tree(src: &str) -> ItemTree {
        let file = SourceFile {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_name: "x".into(),
            kind: FileKind::Lib,
            lines: preprocess(src),
        };
        parse_file(&file)
    }

    #[test]
    fn recovers_fn_boundaries_and_visibility() {
        let t = tree("pub fn a() {\n    b();\n}\nfn b() {}\n");
        assert_eq!(t.items.len(), 2);
        assert_eq!(t.items[0].name, "a");
        assert_eq!(t.items[0].vis, Vis::Pub);
        assert_eq!((t.items[0].decl_line, t.items[0].body_end), (1, 3));
        assert_eq!(t.items[1].name, "b");
        assert_eq!(t.items[1].vis, Vis::Private);
        assert_eq!((t.items[1].decl_line, t.items[1].body_end), (4, 4));
    }

    #[test]
    fn multiline_signatures_flatten() {
        let t = tree(
            "pub fn long(\n    a: u64,\n    b: &str,\n) -> Result<(), Error> {\n    x();\n}\n",
        );
        assert_eq!(t.items[0].name, "long");
        assert_eq!(t.items[0].params, ["a", "b"]);
        assert_eq!(t.items[0].body_start, 4);
        assert_eq!(t.items[0].body_end, 6);
    }

    #[test]
    fn impl_blocks_nest_methods() {
        let t = tree(
            "struct DiskModel;\nimpl PowerModel for DiskModel {\n    fn service(&mut self, now: u64) {\n        go();\n    }\n}\n",
        );
        let imp = t
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl");
        assert_eq!(imp.name, "DiskModel");
        assert_eq!(imp.trait_name.as_deref(), Some("PowerModel"));
        let (_, m) = t.fns().next().expect("method");
        assert_eq!(m.qualified_name(&t.items), "DiskModel::service");
        assert!(m.is_method(&t.items));
        assert!(m.is_api(&t.items), "trait-impl methods are API surface");
        assert_eq!(m.params, ["now"]);
    }

    #[test]
    fn enums_collect_variants() {
        let t = tree(
            "pub enum DiskState {\n    Idle,\n    SpinningDown(SimTime),\n    Standby,\n    SpinningUp(SimTime),\n}\n",
        );
        let e = t.enum_named("DiskState").expect("enum");
        assert_eq!(
            e.variants,
            ["Idle", "SpinningDown", "Standby", "SpinningUp"]
        );
    }

    #[test]
    fn test_scope_is_inherited() {
        let t = tree("#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib() {}\n");
        let helper = t.items.iter().find(|i| i.name == "helper").expect("helper");
        assert!(helper.in_test);
        let lib = t.items.iter().find(|i| i.name == "lib").expect("lib");
        assert!(!lib.in_test);
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let t = tree(
            "impl<T: Clone> Holder<T>\nwhere\n    T: Send,\n{\n    pub fn get(&self) -> T {\n        self.0.clone()\n    }\n}\n",
        );
        let imp = t
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl");
        assert_eq!(imp.name, "Holder");
        assert_eq!(imp.trait_name, None);
        let (_, g) = t.fns().next().expect("method");
        assert_eq!(g.qualified_name(&t.items), "Holder::get");
        assert_eq!(g.vis, Vis::Pub);
        assert!(!g.is_api(&t.items) || g.vis == Vis::Pub);
    }

    #[test]
    fn braceless_items_do_not_desync_depth() {
        let t = tree("pub struct Marker;\npub fn after() {}\n");
        assert_eq!(t.items.len(), 2);
        assert_eq!(t.items[1].name, "after");
        assert_eq!(t.items[1].parent, None);
    }

    #[test]
    fn fn_at_finds_innermost() {
        let t = tree("fn outer() {\n    let x = 1;\n}\nfn other() {}\n");
        assert_eq!(t.fn_at(2).map(|i| i.name.as_str()), Some("outer"));
        assert_eq!(t.fn_at(4).map(|i| i.name.as_str()), Some("other"));
    }
}
