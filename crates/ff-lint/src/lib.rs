//! # ff-lint — workspace static analysis for the FlexFetch simulator
//!
//! A std-only, dependency-free (no `syn`/`quote`; the build environment
//! is offline) lint pass enforcing the properties the reproduction's
//! credibility rests on:
//!
//! 1. **determinism** — simulation crates must not read wall-clock time,
//!    ambient RNGs, or iterate unordered hash maps; simulation state
//!    comes only from `ff_base::rng` (seeded) and `ff_base::time`
//!    (simulated). A run must be bit-identical given a seed.
//! 2. **panic-safety** — library code propagates errors instead of
//!    aborting (`unwrap`/`expect`/`panic!`-family).
//! 3. **unit-safety** — device/sim hot paths keep quantities in ff-base
//!    newtypes (`Watts`, `Joules`, `Dur`, `Bytes`) rather than raw `as`
//!    casts and `f64` seconds.
//! 4. **float-eq** — no `==`/`!=` against float literals.
//! 5. **model-invariants** — the hard-coded Hitachi DK23DA and Cisco
//!    Aironet 350 tables must satisfy the paper's §3 constraints
//!    (non-negative powers, break-even below the 20 s spin-down
//!    timeout, 800 ms CAM→PSM below the disk timeout, 802.11b rates).
//! 6. **hygiene** — inventory of open-work markers and `#[allow]`
//!    suppressions.
//!
//! Findings ratchet against a committed [`baseline`]: the run fails only
//! on findings the baseline does not accept, so existing debt is
//! tracked without blocking the build, while regressions are.

pub mod baseline;
pub mod rules;
pub mod scan;

pub use baseline::{Baseline, Delta};
pub use rules::{Finding, Rule};
pub use scan::{FileKind, SourceFile};

use ff_base::json::Value;
use ff_base::{Error, Result};
use std::fmt::Write as _;
use std::path::Path;

/// The result of one lint run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, baselined or not, in (rule, file, line) order.
    pub findings: Vec<Finding>,
    /// Comparison against the baseline used for the run.
    pub delta: Delta,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Exit status the CLI should report: clean means nothing beyond
    /// the baseline.
    pub fn is_clean(&self) -> bool {
        self.delta.is_clean()
    }

    /// Findings belonging to one rule family.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Render the human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for rule in Rule::all() {
            let members: Vec<&Finding> = self.findings_for(rule).collect();
            if members.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{} ({} finding(s))", rule, members.len());
            let width = members
                .iter()
                .map(|f| f.file.len() + 1 + digits(f.line))
                .max()
                .unwrap_or(0);
            for f in &members {
                let loc = format!("{}:{}", f.file, f.line);
                let _ = writeln!(out, "  {loc:<width$}  {:<14} {}", f.token, f.message);
            }
        }
        let new = self.delta.new_count();
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} finding(s), {} beyond baseline{}",
            self.files_scanned,
            self.findings.len(),
            new,
            if new == 0 { " — OK" } else { "" },
        );
        if !self.delta.new.is_empty() {
            let _ = writeln!(out, "\nnew findings (not in baseline):");
            for (key, over, members) in &self.delta.new {
                let _ = writeln!(
                    out,
                    "  {} {} `{}`: {} over baseline; occurrences:",
                    key.0, key.1, key.2, over
                );
                for f in members {
                    let _ = writeln!(out, "    {}:{} {}", f.file, f.line, f.message);
                }
            }
        }
        if !self.delta.improved.is_empty() {
            let _ = writeln!(
                out,
                "\n{} baseline entr(ies) improved — consider --update-baseline",
                self.delta.improved.len()
            );
        }
        out
    }

    /// Render the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let finding_node = |f: &Finding| {
            Value::Object(vec![
                ("rule".into(), Value::Str(f.rule.as_str().into())),
                ("file".into(), Value::Str(f.file.clone())),
                ("line".into(), Value::UInt(f.line as u64)),
                ("token".into(), Value::Str(f.token.clone())),
                ("message".into(), Value::Str(f.message.clone())),
            ])
        };
        let per_rule: Vec<Value> = Rule::all()
            .into_iter()
            .map(|r| {
                Value::Object(vec![
                    ("rule".into(), Value::Str(r.as_str().into())),
                    (
                        "count".into(),
                        Value::UInt(self.findings_for(r).count() as u64),
                    ),
                ])
            })
            .collect();
        let new: Vec<Value> = self
            .delta
            .new
            .iter()
            .flat_map(|(_, _, members)| members.iter().map(finding_node))
            .collect();
        let doc = Value::Object(vec![
            (
                "summary".into(),
                Value::Object(vec![
                    (
                        "files_scanned".into(),
                        Value::UInt(self.files_scanned as u64),
                    ),
                    ("total".into(), Value::UInt(self.findings.len() as u64)),
                    (
                        "beyond_baseline".into(),
                        Value::UInt(self.delta.new_count()),
                    ),
                    ("clean".into(), Value::Bool(self.is_clean())),
                    ("by_rule".into(), Value::Array(per_rule)),
                ]),
            ),
            ("new".into(), Value::Array(new)),
            (
                "findings".into(),
                Value::Array(self.findings.iter().map(finding_node).collect()),
            ),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Scan the workspace under `root` and produce all findings.
pub fn collect_findings(root: &Path) -> Result<(Vec<Finding>, usize)> {
    let sources = scan::collect_sources(root)
        .map_err(|e| Error::Io(format!("scanning {}: {e}", root.display())))?;
    if sources.is_empty() {
        return Err(Error::Config(format!(
            "no Rust sources found under {} — wrong --root?",
            root.display()
        )));
    }
    let findings = rules::run_all(&sources);
    Ok((findings, sources.len()))
}

/// Scan and compare against a baseline in one step.
pub fn run(root: &Path, baseline: &Baseline) -> Result<Report> {
    let (findings, files_scanned) = collect_findings(root)?;
    let delta = baseline.compare(&findings);
    Ok(Report {
        findings,
        delta,
        files_scanned,
    })
}

/// The workspace root this crate was built in (ff-lint lives at
/// `crates/ff-lint`).
pub fn default_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed baseline path for a workspace root.
pub fn default_baseline_path(root: &Path) -> std::path::PathBuf {
    root.join("crates/ff-lint/baseline.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_scan_finds_sources_and_is_deterministic() {
        let root = default_root();
        let (a, n) = collect_findings(&root).expect("scan ok");
        let (b, _) = collect_findings(&root).expect("scan ok");
        assert!(n > 20, "expected a real workspace, scanned {n} files");
        assert_eq!(a, b, "two scans of the same tree must agree");
    }

    #[test]
    fn report_renders_both_formats() {
        let root = default_root();
        let (findings, files_scanned) = collect_findings(&root).expect("scan ok");
        let baseline = Baseline::from_findings(&findings);
        let delta = baseline.compare(&findings);
        let report = Report {
            findings,
            delta,
            files_scanned,
        };
        assert!(report.is_clean());
        let table = report.to_table();
        assert!(table.contains("beyond baseline"));
        let json = report.to_json();
        let doc = ff_base::json::Value::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("summary").and_then(|s| s.get("clean")),
            Some(&ff_base::json::Value::Bool(true))
        );
    }
}
