//! # ff-lint — workspace static analysis for the FlexFetch simulator
//!
//! A std-only, dependency-free (no `syn`/`quote`; the build environment
//! is offline) lint pass enforcing the properties the reproduction's
//! credibility rests on:
//!
//! 1. **determinism** — simulation crates must not read wall-clock time,
//!    ambient RNGs, or iterate unordered hash maps; simulation state
//!    comes only from `ff_base::rng` (seeded) and `ff_base::time`
//!    (simulated). A run must be bit-identical given a seed.
//! 2. **panic-safety** — library code propagates errors instead of
//!    aborting (`unwrap`/`expect`/`panic!`-family).
//! 3. **unit-safety** — device/sim hot paths keep quantities in ff-base
//!    newtypes (`Watts`, `Joules`, `Dur`, `Bytes`) rather than raw `as`
//!    casts and `f64` seconds.
//! 4. **float-eq** — no `==`/`!=` against float literals.
//! 5. **model-invariants** — the hard-coded Hitachi DK23DA and Cisco
//!    Aironet 350 tables must satisfy the paper's §3 constraints
//!    (non-negative powers, break-even below the 20 s spin-down
//!    timeout, 800 ms CAM→PSM below the disk timeout, 802.11b rates).
//! 6. **hygiene** — inventory of open-work markers and `#[allow]`
//!    suppressions.
//!
//! On top of the per-line rules, a semantic layer ([`items`] →
//! [`callgraph`], [`fsm`], [`units`]) recovers item boundaries from the
//! preprocessed lines and runs three cross-file analyses:
//!
//! 7. **panic-reachability** — which public APIs of the simulation
//!    crates can transitively reach a panic site (`unwrap`, `expect`,
//!    `panic!`-family, slice indexing) through the workspace call graph.
//! 8. **fsm** — the DK23DA and Aironet 350 `match self.state` machines,
//!    extracted into transition tables and model-checked for
//!    exhaustiveness, reachability, deadlock-freedom, and the presence
//!    of the spin-down / CAM→PSM timeout paths tied to the pinned
//!    constants.
//! 9. **unit-flow** — the `_us`/`_ms`/`_s` suffix convention propagated
//!    through let-bindings and call sites; mixed-unit arithmetic and
//!    mismatched call arguments are findings.
//!
//! A second semantic wave ([`dataflow`], [`consts`], [`coverage`]) makes
//! the audit *interprocedural*:
//!
//! 10. **unit-flow-interproc** — unit (and joule/byte) facts propagated
//!     *across* function boundaries through call-graph-resolved return
//!     and parameter summaries; catches the `_ms` value produced two
//!     crates away and fed to a `_us` parameter.
//! 11. **const-provenance** — every Table 1/Table 2 physical constant
//!     has one home, `ff-device::consts`; a matching numeric literal
//!     anywhere else in the simulation crates is a shadowed constant,
//!     and the registry itself is cross-checked against the pinned
//!     values.
//! 12. **event-coverage** — every reachable device-state transition must
//!     be metered (`dwell`/`transition`) where it commits, the pinned
//!     meter event names must exist, and `ff-sim` must still drain and
//!     re-emit them as `DeviceTransition` record events.
//!
//! A third wave ([`product`], [`taint`], [`conformance`]) moves from
//! checking each machine and each line to proving the *composed*
//! system model:
//!
//! 13. **fsm-product** — the explicit cross-product automaton of every
//!     extracted machine (disk × WNIC × server path), exhaustively
//!     explored: no simultaneous deadlock, no emergent-unreachable
//!     tuple, every degraded server-path state recovers to healthy,
//!     backoff ladders are clamped and bounded, and powered-off states
//!     are only left through their power-up edge.
//! 14. **nondet-taint** — interprocedural nondeterminism taint over a
//!     widened call graph: wall-clock reads, env access, and
//!     unsanitised hash iteration may not flow — through any chain of
//!     helpers — into `SimReport`, recorder output, or bench JSON.
//! 15. **trace-conformance** — the committed observe/chaos JSONL
//!     traces replayed against the product model: every runtime
//!     transition must be a static edge, and never-exercised static
//!     edges surface as machine-readable coverage debt.
//!
//! A fourth wave ([`interval`], [`absint`]) is a numeric abstract
//! interpretation — a signed-interval × sign × dimension product
//! domain evaluated through `let` bindings, accumulator widening, and
//! a two-round function-summary fixpoint, seeded with the Table 1/2
//! constants:
//!
//! 16. **arith-safety** — division-by-zero freedom, `as` casts the
//!     inferred interval cannot prove lossless, and unchecked `+`/`*`
//!     on `_bytes`/`_us` counters where `saturating_*` or the
//!     `ff_base::checked` helpers exist.
//! 17. **energy-bounds** — every `_j` accumulation provably ≥ 0 and
//!     battery `*drain*` functions monotone.
//! 18. **timeout-order** — T_breakeven recomputed from the constant
//!     registry with interval arithmetic, statically ordered below the
//!     disk idle timeout and above the WNIC PSM knee, with the
//!     outage-retry ladder clamped and its clamp ceiling above the
//!     timeout.
//!
//! Findings ratchet against a committed [`baseline`]: the run fails only
//! on findings the baseline does not accept, so existing debt is
//! tracked without blocking the build, while regressions are. The
//! linter's own regression net is [`mutgen`]: deterministic seed-derived
//! mutants of the workspace sources, re-analysed in memory, with a
//! per-family kill-score matrix ratcheted in CI.

pub mod absint;
pub mod baseline;
pub mod callgraph;
pub mod conformance;
pub mod consts;
pub mod coverage;
pub mod dataflow;
pub mod fsm;
pub mod interval;
pub mod items;
pub mod mutgen;
pub mod product;
pub mod rules;
pub mod scan;
pub mod taint;
pub mod units;

pub use baseline::{Baseline, Delta};
pub use rules::{Finding, Rule};
pub use scan::{FileKind, SourceFile};

use ff_base::json::Value;
use ff_base::{Error, Result};
use std::fmt::Write as _;
use std::path::Path;

/// The result of one lint run.
#[derive(Debug)]
pub struct Report {
    /// Every finding, baselined or not, in (rule, file, line) order.
    pub findings: Vec<Finding>,
    /// Comparison against the baseline used for the run.
    pub delta: Delta,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// State machines extracted by the [`fsm`] analysis, whether or not
    /// they produced findings.
    pub fsm_tables: Vec<fsm::FsmTable>,
    /// The explored cross-product automaton.
    pub product: product::ProductGraph,
    /// Trace-replay coverage from the [`conformance`] pass.
    pub trace_coverage: conformance::Coverage,
}

impl Report {
    /// Exit status the CLI should report: clean means nothing beyond
    /// the baseline.
    pub fn is_clean(&self) -> bool {
        self.delta.is_clean()
    }

    /// Findings belonging to one rule family.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Render the human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for rule in Rule::all() {
            let members: Vec<&Finding> = self.findings_for(rule).collect();
            if members.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{} ({} finding(s))", rule, members.len());
            let width = members
                .iter()
                .map(|f| f.file.len() + 1 + digits(f.line))
                .max()
                .unwrap_or(0);
            for f in &members {
                let loc = format!("{}:{}", f.file, f.line);
                let _ = writeln!(out, "  {loc:<width$}  {:<14} {}", f.token, f.message);
            }
        }
        let new = self.delta.new_count();
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} finding(s), {} beyond baseline{}",
            self.files_scanned,
            self.findings.len(),
            new,
            if new == 0 { " — OK" } else { "" },
        );
        if !self.delta.new.is_empty() {
            let _ = writeln!(out, "\nnew findings (not in baseline):");
            for (key, over, members) in &self.delta.new {
                let _ = writeln!(
                    out,
                    "  {} {} `{}`: {} over baseline; occurrences:",
                    key.0, key.1, key.2, over
                );
                for f in members {
                    let _ = writeln!(out, "    {}:{} {}", f.file, f.line, f.message);
                }
            }
        }
        if !self.delta.improved.is_empty() {
            let _ = writeln!(
                out,
                "\n{} baseline entr(ies) improved — consider --update-baseline",
                self.delta.improved.len()
            );
        }
        out
    }

    /// Render the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let finding_node = |f: &Finding| {
            Value::Object(vec![
                ("rule".into(), Value::Str(f.rule.as_str().into())),
                ("file".into(), Value::Str(f.file.clone())),
                ("line".into(), Value::UInt(f.line as u64)),
                ("token".into(), Value::Str(f.token.clone())),
                ("message".into(), Value::Str(f.message.clone())),
            ])
        };
        let per_rule: Vec<Value> = Rule::all()
            .into_iter()
            .map(|r| {
                Value::Object(vec![
                    ("rule".into(), Value::Str(r.as_str().into())),
                    (
                        "count".into(),
                        Value::UInt(self.findings_for(r).count() as u64),
                    ),
                ])
            })
            .collect();
        let new: Vec<Value> = self
            .delta
            .new
            .iter()
            .flat_map(|(_, _, members)| members.iter().map(finding_node))
            .collect();
        let fsm_node = |t: &fsm::FsmTable| {
            Value::Object(vec![
                ("file".into(), Value::Str(t.file.clone())),
                ("enum".into(), Value::Str(t.enum_name.clone())),
                (
                    "states".into(),
                    Value::Array(t.states.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
                (
                    "initial".into(),
                    Value::Array(t.initial.iter().map(|s| Value::Str(s.clone())).collect()),
                ),
                (
                    "transitions".into(),
                    Value::Array(
                        t.transitions
                            .iter()
                            .map(|tr| {
                                Value::Object(vec![
                                    ("from".into(), Value::Str(tr.from.clone())),
                                    ("to".into(), Value::Str(tr.to.clone())),
                                    ("line".into(), Value::UInt(tr.line as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let runtime_only = self
            .findings
            .iter()
            .filter(|f| f.rule == Rule::TraceConformance && f.token.starts_with("runtime-only:"))
            .count() as u64;
        let doc = Value::Object(vec![
            (
                "summary".into(),
                Value::Object(vec![
                    (
                        "files_scanned".into(),
                        Value::UInt(self.files_scanned as u64),
                    ),
                    ("total".into(), Value::UInt(self.findings.len() as u64)),
                    (
                        "beyond_baseline".into(),
                        Value::UInt(self.delta.new_count()),
                    ),
                    ("clean".into(), Value::Bool(self.is_clean())),
                    ("by_rule".into(), Value::Array(per_rule)),
                ]),
            ),
            (
                "fsm".into(),
                Value::Array(self.fsm_tables.iter().map(fsm_node).collect()),
            ),
            ("product".into(), self.product.summary_json_value()),
            (
                "conformance".into(),
                self.trace_coverage.to_json_value(runtime_only),
            ),
            ("new".into(), Value::Array(new)),
            (
                "findings".into(),
                Value::Array(self.findings.iter().map(finding_node).collect()),
            ),
        ]);
        let mut text = doc.to_pretty();
        text.push('\n');
        text
    }
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Everything one scan of the workspace produces, before any baseline
/// comparison.
#[derive(Debug)]
pub struct Analysis {
    /// Per-line rule findings plus semantic-layer findings, sorted in
    /// (rule, file, line, token) order.
    pub findings: Vec<Finding>,
    /// State machines the [`fsm`] analysis extracted.
    pub fsm_tables: Vec<fsm::FsmTable>,
    /// The explored cross-product automaton (for `--export-product`).
    pub product: product::ProductGraph,
    /// Trace-replay coverage from the [`conformance`] pass.
    pub trace_coverage: conformance::Coverage,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Scan the workspace under `root`, run the per-line rules and the
/// semantic layer, and produce all findings.
pub fn analyze(root: &Path) -> Result<Analysis> {
    let sources = scan::collect_sources(root)
        .map_err(|e| Error::Io(format!("scanning {}: {e}", root.display())))?;
    if sources.is_empty() {
        return Err(Error::Config(format!(
            "no Rust sources found under {} — wrong --root?",
            root.display()
        )));
    }
    Ok(analyze_sources(&sources, root))
}

/// Run every analysis wave over an already-collected source set.
///
/// Split out from [`analyze`] so the mutation engine ([`mutgen`]) can
/// re-run all eighteen families against in-memory mutated sources
/// without touching the filesystem (`root` is still needed by the
/// trace-conformance pass, which replays committed JSONL traces).
pub fn analyze_sources(sources: &[SourceFile], root: &Path) -> Analysis {
    let mut findings = rules::run_all(sources);
    let trees = items::build(sources);
    let graph = callgraph::Graph::build(sources, &trees);
    findings.extend(callgraph::panic_reachability(sources, &trees, &graph));
    let (fsm_tables, fsm_findings) = fsm::analyze(sources, &trees);
    findings.extend(fsm_findings);
    findings.extend(units::analyze(sources, &trees));
    findings.extend(dataflow::analyze(sources, &trees));
    findings.extend(consts::analyze(sources));
    findings.extend(coverage::analyze(sources, &trees, &fsm_tables));
    let (product, product_findings) = product::analyze(sources, &fsm_tables);
    findings.extend(product_findings);
    findings.extend(taint::analyze(sources, &trees));
    findings.extend(absint::analyze(sources, &trees));
    let (trace_coverage, conformance_findings) = conformance::analyze(root, &fsm_tables);
    findings.extend(conformance_findings);
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.token).cmp(&(b.rule, &b.file, b.line, &b.token))
    });
    Analysis {
        findings,
        fsm_tables,
        product,
        trace_coverage,
        files_scanned: sources.len(),
    }
}

/// Scan the workspace under `root` and produce all findings.
pub fn collect_findings(root: &Path) -> Result<(Vec<Finding>, usize)> {
    let analysis = analyze(root)?;
    Ok((analysis.findings, analysis.files_scanned))
}

/// Scan and compare against a baseline in one step.
///
/// This is the library entry point behind the CLI — the doctest below
/// is the workspace's self-scan, the same check `./scripts/check.sh`
/// runs:
///
/// ```
/// use ff_lint::{default_baseline_path, default_root, Baseline};
///
/// let root = default_root();
/// let baseline = Baseline::load(&default_baseline_path(&root)).unwrap();
/// let report = ff_lint::run(&root, &baseline).unwrap();
///
/// assert!(report.files_scanned > 50, "scanned {}", report.files_scanned);
/// // All eighteen families ran; nothing beyond the accepted ratchet.
/// assert!(report.delta.new.is_empty(), "{:?}", report.delta.new);
/// ```
pub fn run(root: &Path, baseline: &Baseline) -> Result<Report> {
    let analysis = analyze(root)?;
    let delta = baseline.compare(&analysis.findings);
    Ok(Report {
        findings: analysis.findings,
        delta,
        files_scanned: analysis.files_scanned,
        fsm_tables: analysis.fsm_tables,
        product: analysis.product,
        trace_coverage: analysis.trace_coverage,
    })
}

/// The workspace root this crate was built in (ff-lint lives at
/// `crates/ff-lint`).
pub fn default_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed baseline path for a workspace root.
pub fn default_baseline_path(root: &Path) -> std::path::PathBuf {
    root.join("crates/ff-lint/baseline.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_scan_finds_sources_and_is_deterministic() {
        let root = default_root();
        let (a, n) = collect_findings(&root).expect("scan ok");
        let (b, _) = collect_findings(&root).expect("scan ok");
        assert!(n > 20, "expected a real workspace, scanned {n} files");
        assert_eq!(a, b, "two scans of the same tree must agree");
    }

    #[test]
    fn report_renders_both_formats() {
        let root = default_root();
        let analysis = analyze(&root).expect("scan ok");
        let baseline = Baseline::from_findings(&analysis.findings);
        let delta = baseline.compare(&analysis.findings);
        let report = Report {
            findings: analysis.findings,
            delta,
            files_scanned: analysis.files_scanned,
            fsm_tables: analysis.fsm_tables,
            product: analysis.product,
            trace_coverage: analysis.trace_coverage,
        };
        assert!(report.is_clean());
        let table = report.to_table();
        assert!(table.contains("beyond baseline"));
        let json = report.to_json();
        let doc = ff_base::json::Value::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("summary").and_then(|s| s.get("clean")),
            Some(&ff_base::json::Value::Bool(true))
        );
        // The third-wave nodes are part of the document contract.
        let product = doc.get("product").expect("product node");
        assert!(product.get("reachable").is_some());
        assert!(doc.get("conformance").is_some());
    }

    #[test]
    fn self_scan_extracts_both_device_fsms() {
        let root = default_root();
        let analysis = analyze(&root).expect("scan ok");
        let enums: Vec<&str> = analysis
            .fsm_tables
            .iter()
            .map(|t| t.enum_name.as_str())
            .collect();
        assert!(enums.contains(&"DiskState"), "{enums:?}");
        assert!(enums.contains(&"WnicState"), "{enums:?}");
    }
}
