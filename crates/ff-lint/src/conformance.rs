//! Static↔dynamic trace conformance.
//!
//! The simulator's observability layer serialises every state change
//! as a JSONL event (`device_state` with a runtime dwell label,
//! `server_path` with the failover label). This pass replays the
//! committed traces under `bench/` and `results/` against the tables
//! the [`fsm`](crate::fsm) extractor recovered from source: every
//! runtime transition must be a static edge (directly, or bridged
//! through states the runtime cannot observe, like the WNIC's `ToPsm`
//! /`ToCam` switching states). A runtime transition the static model
//! lacks is a finding — the code and the model have diverged.
//!
//! The inverse gap — static edges no committed trace exercises — is
//! not a failure (traces are samples, the model is the whole), but it
//! is debt worth seeing: it is reported per machine in the JSON
//! report's `conformance.unexercised` array.

use crate::fsm::FsmTable;
use crate::rules::{Finding, Rule};
use ff_base::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Runtime dwell labels per machine, mapped to static enum states.
/// `active` is the disk servicing while logically in `Idle` (the
/// DK23DA machine has no separate active state), and both WNIC dwell
/// labels per mode collapse onto the mode state.
const DISK_LABELS: [(&str, &str); 5] = [
    ("active", "Idle"),
    ("idle", "Idle"),
    ("spinning_down", "SpinningDown"),
    ("spinning_up", "SpinningUp"),
    ("standby", "Standby"),
];
const WNIC_LABELS: [(&str, &str); 4] = [
    ("cam_idle", "Cam"),
    ("cam_transfer", "Cam"),
    ("psm_idle", "Psm"),
    ("psm_transfer", "Psm"),
];
const SERVER_LABELS: [(&str, &str); 3] = [
    ("dead", "MarkedDead"),
    ("down", "Down"),
    ("healthy", "Healthy"),
];

/// Labels the runtime emits while dwelling in a transient state with
/// no unique static counterpart: the WNIC's `switching` dwell covers
/// both `ToPsm` and `ToCam`. The replay skips them — the surrounding
/// observable states must still connect through one unobservable
/// bridge state, which is exactly what those labels witness.
const WNIC_TRANSIENT: [&str; 1] = ["switching"];
const NO_TRANSIENT: [&str; 0] = [];

/// The machines traces can speak about: trace key, enum name, labels,
/// transient labels.
const MACHINES: [(&str, &str, &[(&str, &str)], &[&str]); 3] = [
    ("disk", "DiskState", &DISK_LABELS, &NO_TRANSIENT),
    ("server", "ServerPathState", &SERVER_LABELS, &NO_TRANSIENT),
    ("wnic", "WnicState", &WNIC_LABELS, &WNIC_TRANSIENT),
];

/// A statically-reachable transition no committed trace exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unexercised {
    /// Machine key (`disk`/`wnic`/`server`).
    pub machine: String,
    /// Static source state.
    pub from: String,
    /// Static target state.
    pub to: String,
}

/// What the replay covered, for the JSON report and coverage debt.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Workspace-relative trace files replayed, in scan order.
    pub traces: Vec<String>,
    /// State-change events replayed across all traces.
    pub events: u64,
    /// Static non-self transitions no trace exercised.
    pub unexercised: Vec<Unexercised>,
}

impl Coverage {
    /// The `conformance` node of the JSON report.
    pub fn to_json_value(&self, runtime_only: u64) -> Value {
        Value::Object(vec![
            (
                "traces".into(),
                Value::Array(self.traces.iter().map(|t| Value::Str(t.clone())).collect()),
            ),
            ("events".into(), Value::UInt(self.events)),
            ("runtime_only".into(), Value::UInt(runtime_only)),
            (
                "unexercised".into(),
                Value::Array(
                    self.unexercised
                        .iter()
                        .map(|u| {
                            Value::Object(vec![
                                ("machine".into(), Value::Str(u.machine.clone())),
                                ("from".into(), Value::Str(u.from.clone())),
                                ("to".into(), Value::Str(u.to.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One machine's replay context: its table, label map, observable
/// image, and current replay position.
struct Machine<'a> {
    key: &'static str,
    table: &'a FsmTable,
    labels: &'static [(&'static str, &'static str)],
    /// Labels for transient states with no unique static counterpart;
    /// the replay skips them and lets bridging cover the hop.
    transient: &'static [&'static str],
    /// States the runtime emits a label for; bridging is only allowed
    /// through states outside this set (they could not have been
    /// observed between two events).
    observable: BTreeSet<&'static str>,
    current: Option<String>,
}

impl<'a> Machine<'a> {
    fn new(
        key: &'static str,
        table: &'a FsmTable,
        labels: &'static [(&'static str, &'static str)],
        transient: &'static [&'static str],
    ) -> Machine<'a> {
        let current = match table.initial.as_slice() {
            [only] => Some(only.clone()),
            _ => None,
        };
        Machine {
            key,
            table,
            labels,
            transient,
            observable: labels.iter().map(|&(_, s)| s).collect(),
            current,
        }
    }

    fn state_for(&self, label: &str) -> Option<&'static str> {
        self.labels
            .iter()
            .find(|&&(l, _)| l == label)
            .map(|&(_, s)| s)
    }
}

/// Replay every `bench/*.jsonl` and `results/*.jsonl` under `root`
/// against the extracted tables. Returns coverage plus one finding per
/// runtime-only transition, unknown label, or malformed line.
pub fn analyze(root: &Path, tables: &[FsmTable]) -> (Coverage, Vec<Finding>) {
    let mut coverage = Coverage::default();
    let mut findings = Vec::new();

    let mut machines: BTreeMap<&str, Machine<'_>> = BTreeMap::new();
    for (key, enum_name, labels, transient) in MACHINES {
        if let Some(table) = tables.iter().find(|t| t.enum_name == enum_name) {
            machines.insert(key, Machine::new(key, table, labels, transient));
        }
    }

    let mut trace_paths = Vec::new();
    for dir in ["bench", "results"] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                trace_paths.push((
                    format!("{dir}/{}", entry.file_name().to_string_lossy()),
                    path,
                ));
            }
        }
    }
    trace_paths.sort();

    let mut exercised: BTreeSet<(String, String, String)> = BTreeSet::new();
    for (rel, path) in trace_paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            findings.push(Finding {
                rule: Rule::TraceConformance,
                file: rel.clone(),
                line: 0,
                token: "unreadable".to_owned(),
                message: "trace file exists but could not be read".to_owned(),
            });
            continue;
        };
        coverage.traces.push(rel.clone());
        // Each trace is an independent run: machines restart.
        for m in machines.values_mut() {
            m.current = match m.table.initial.as_slice() {
                [only] => Some(only.clone()),
                _ => None,
            };
        }
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(doc) = Value::parse(line) else {
                findings.push(Finding {
                    rule: Rule::TraceConformance,
                    file: rel.clone(),
                    line: idx + 1,
                    token: "malformed".to_owned(),
                    message: "trace line is not a JSON object".to_owned(),
                });
                continue;
            };
            let Some(ev) = doc.get("ev").and_then(Value::as_str) else {
                continue;
            };
            let machine_key = match ev {
                "device_state" => match doc.get("dev").and_then(Value::as_str) {
                    Some(dev) => dev.to_owned(),
                    None => continue,
                },
                "server_path" => "server".to_owned(),
                _ => continue,
            };
            let Some(machine) = machines.get_mut(machine_key.as_str()) else {
                continue; // a device without an extracted machine (flash)
            };
            let Some(label) = doc.get("state").and_then(Value::as_str) else {
                continue;
            };
            coverage.events += 1;
            if machine.transient.contains(&label) {
                continue;
            }
            let Some(next) = machine.state_for(label) else {
                findings.push(Finding {
                    rule: Rule::TraceConformance,
                    file: rel.clone(),
                    line: idx + 1,
                    token: format!("unknown-state:{}:{label}", machine.key),
                    message: format!(
                        "runtime label `{label}` maps to no state of {}",
                        machine.table.enum_name
                    ),
                });
                continue;
            };
            let prev = machine.current.replace(next.to_owned());
            let Some(prev) = prev else {
                continue; // first observation of a machine without a unique initial
            };
            if prev == next {
                if machine.table.has_transition(&prev, next) {
                    exercised.insert((machine.key.to_owned(), prev.clone(), next.to_owned()));
                }
                continue;
            }
            if machine.table.has_transition(&prev, next) {
                exercised.insert((machine.key.to_owned(), prev, next.to_owned()));
                continue;
            }
            // Bridge through one runtime-unobservable intermediate
            // (e.g. Cam -> ToPsm -> Psm where only Cam/Psm emit).
            let bridge = machine.table.states.iter().find(|mid| {
                !machine.observable.contains(mid.as_str())
                    && machine.table.has_transition(&prev, mid)
                    && machine.table.has_transition(mid, next)
            });
            if let Some(mid) = bridge {
                exercised.insert((machine.key.to_owned(), prev.clone(), mid.clone()));
                exercised.insert((machine.key.to_owned(), mid.clone(), next.to_owned()));
                continue;
            }
            findings.push(Finding {
                rule: Rule::TraceConformance,
                file: rel.clone(),
                line: idx + 1,
                token: format!("runtime-only:{}:{prev}->{next}", machine.key),
                message: format!(
                    "trace takes {prev} -> {next} but {} has no such edge (directly or via \
                     an unobservable state); the static model and the code have diverged",
                    machine.table.enum_name
                ),
            });
        }
    }

    // Coverage debt: static non-self edges never exercised, reported
    // only when there were traces to learn from.
    if !coverage.traces.is_empty() {
        for machine in machines.values() {
            let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
            for tr in &machine.table.transitions {
                if tr.from == tr.to || !seen.insert((tr.from.as_str(), tr.to.as_str())) {
                    continue;
                }
                let key = (machine.key.to_owned(), tr.from.clone(), tr.to.clone());
                if !exercised.contains(&key) {
                    coverage.unexercised.push(Unexercised {
                        machine: machine.key.to_owned(),
                        from: tr.from.clone(),
                        to: tr.to.clone(),
                    });
                }
            }
        }
        coverage
            .unexercised
            .sort_by(|a, b| (&a.machine, &a.from, &a.to).cmp(&(&b.machine, &b.from, &b.to)));
    }

    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.token).cmp(&(b.rule, &b.file, b.line, &b.token))
    });
    (coverage, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::Transition;

    fn disk_table() -> FsmTable {
        let edges = [
            ("Idle", "Idle"),
            ("Idle", "SpinningDown"),
            ("SpinningDown", "Standby"),
            ("Standby", "SpinningUp"),
            ("SpinningUp", "Idle"),
        ];
        FsmTable {
            file: "crates/ff-device/src/disk.rs".to_owned(),
            enum_name: "DiskState".to_owned(),
            states: ["Idle", "SpinningDown", "Standby", "SpinningUp"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            initial: vec!["Idle".to_owned(), "Standby".to_owned()],
            transitions: edges
                .iter()
                .enumerate()
                .map(|(i, (f, t))| Transition {
                    from: (*f).to_owned(),
                    to: (*t).to_owned(),
                    line: i + 1,
                })
                .collect(),
        }
    }

    fn tree_with_trace(name: &str, trace: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-lint-conformance-{name}"));
        std::fs::create_dir_all(dir.join("bench")).expect("mkdir");
        std::fs::write(dir.join("bench/trace.jsonl"), trace).expect("write");
        dir
    }

    fn event(dev: &str, state: &str) -> String {
        format!("{{\"t\":0,\"ev\":\"device_state\",\"dev\":\"{dev}\",\"state\":\"{state}\"}}")
    }

    #[test]
    fn legal_trace_replays_clean_and_tracks_coverage() {
        let trace = [
            event("disk", "idle"),
            event("disk", "spinning_down"),
            event("disk", "standby"),
            event("disk", "spinning_up"),
            event("disk", "active"),
        ]
        .join("\n");
        let dir = tree_with_trace("clean", &trace);
        let (coverage, findings) = analyze(&dir, &[disk_table()]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(coverage.events, 5);
        assert!(
            coverage.unexercised.is_empty(),
            "every non-self disk edge is walked: {:?}",
            coverage.unexercised
        );
    }

    #[test]
    fn runtime_only_transition_is_a_finding() {
        // idle -> standby skips the observable SpinningDown state; the
        // recorder would have emitted it, so this is a model divergence.
        let trace = [event("disk", "idle"), event("disk", "standby")].join("\n");
        let dir = tree_with_trace("runtime-only", &trace);
        let (_, findings) = analyze(&dir, &[disk_table()]);
        assert!(
            findings
                .iter()
                .any(|f| f.token == "runtime-only:disk:Idle->Standby"),
            "{findings:?}"
        );
    }

    #[test]
    fn unknown_label_is_a_finding() {
        let dir = tree_with_trace("unknown", &event("disk", "warp"));
        let (_, findings) = analyze(&dir, &[disk_table()]);
        assert!(
            findings
                .iter()
                .any(|f| f.token == "unknown-state:disk:warp"),
            "{findings:?}"
        );
    }

    #[test]
    fn unexercised_edges_surface_as_coverage_debt() {
        let trace = event("disk", "idle");
        let dir = tree_with_trace("debt", &trace);
        let (coverage, findings) = analyze(&dir, &[disk_table()]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(coverage.unexercised.len(), 4, "{:?}", coverage.unexercised);
    }

    #[test]
    fn transient_labels_are_skipped_and_bridged() {
        // cam_idle -> switching -> psm_idle: `switching` has no unique
        // static state, so the replay skips it and validates Cam -> Psm
        // through the unobservable ToPsm bridge.
        let edges = [
            ("Cam", "ToPsm"),
            ("ToPsm", "Psm"),
            ("Psm", "ToCam"),
            ("ToCam", "Cam"),
        ];
        let wnic = FsmTable {
            file: "crates/ff-device/src/wnic.rs".to_owned(),
            enum_name: "WnicState".to_owned(),
            states: ["Cam", "ToPsm", "Psm", "ToCam"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            initial: vec!["Cam".to_owned()],
            transitions: edges
                .iter()
                .enumerate()
                .map(|(i, (f, t))| Transition {
                    from: (*f).to_owned(),
                    to: (*t).to_owned(),
                    line: i + 1,
                })
                .collect(),
        };
        let trace = [
            event("wnic", "cam_idle"),
            event("wnic", "switching"),
            event("wnic", "psm_idle"),
        ]
        .join("\n");
        let dir = tree_with_trace("transient", &trace);
        let (coverage, findings) = analyze(&dir, &[wnic]);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(coverage.events, 3);
        // The bridged hop exercises Cam->ToPsm and ToPsm->Psm; only the
        // return leg remains as debt.
        assert_eq!(coverage.unexercised.len(), 2, "{:?}", coverage.unexercised);
    }

    #[test]
    fn roots_without_traces_are_silent() {
        let dir = std::env::temp_dir().join("ff-lint-conformance-none");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let (coverage, findings) = analyze(&dir, &[disk_table()]);
        assert!(findings.is_empty());
        assert!(coverage.traces.is_empty());
        assert!(coverage.unexercised.is_empty());
    }
}
