//! Workspace call graph and panic-reachability analysis.
//!
//! Nodes are the non-test fns of library files recovered by
//! [`crate::items`] (bins may abort; they are not reachable from
//! library code). Edges use *graded name resolution* — as much
//! precision as the item skeleton affords, without type inference:
//!
//! * `Type::name(` / `Self::name(` resolves to fns named `name` inside
//!   an `impl`/`trait` block for that type (`Self` = the caller's own);
//! * `module::name(` (lowercase qualifier) resolves to free fns;
//! * `self.name(` resolves to methods of the caller's own type;
//! * `expr.name(` resolves to **every** workspace method named `name`
//!   (class-hierarchy style, so trait dispatch stays covered), except
//!   names that collide with ubiquitous std methods (`push`, `get`,
//!   `flush`, …) where the receiver is almost always a std type;
//! * bare `name(` resolves to free fns named `name`.
//!
//! The std-collision carve-out makes the analysis slightly *under*-
//! approximate: a genuine `self.queue.push(…)` onto a workspace type is
//! not linked. Everything else errs on the side of reporting too much,
//! and the ratchet baseline absorbs the accepted noise.
//!
//! A fn is a *panic source* when its body directly contains a
//! `.unwrap()` / `.expect("` / `panic!` / `unreachable!` / `todo!`
//! token or a slice-indexing expression (`v[i]`). Reachability is
//! propagated backwards over the call graph; the reported findings are
//! the public API fns of the five deterministic simulation crates (see
//! [`crate::rules::DETERMINISM_CRATES`]) from which a panic source is
//! reachable, each with the shortest call path as evidence.

use crate::items::{Item, ItemTree};
use crate::rules::{Finding, Rule, DETERMINISM_CRATES};
use crate::scan::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A node: (file index, arena index) of a fn item.
pub type NodeId = (usize, usize);

/// One direct panic site inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which token class (`.unwrap()`, `panic!`, `slice-index`, …).
    pub token: String,
    /// 1-based line within the defining file.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Sorted adjacency: caller → callees (deterministic order).
    pub calls: BTreeMap<NodeId, Vec<NodeId>>,
    /// Direct panic sites per fn.
    pub panics: BTreeMap<NodeId, Vec<PanicSite>>,
    /// Simple fn name → defining nodes, sorted.
    pub by_name: BTreeMap<String, Vec<NodeId>>,
}

/// Tokens whose presence in a body makes the fn a direct panic source.
const PANIC_BODY_TOKENS: [&str; 5] = [".unwrap()", ".expect(\"", "panic!", "unreachable!", "todo!"];

/// The dependency closure of the simulation crates — the only possible
/// callees of simulation code. Cargo forbids dependency cycles, so the
/// driver/tool crates (ff-bench, ff-lint) can never be called back from
/// these and would only contribute false name-resolution targets.
const GRAPH_CRATES: [&str; 7] = [
    "ff-base",
    "ff-cache",
    "ff-device",
    "ff-policy",
    "ff-profile",
    "ff-sim",
    "ff-trace",
];

/// Keywords that can directly precede `[` without being an indexed
/// expression (`&mut [u8]`, `dyn [T]`-ish type positions).
const NON_INDEX_WORDS: [&str; 6] = ["mut", "dyn", "in", "as", "return", "else"];

/// Method names so common on std containers/writers that a `expr.name(`
/// call almost certainly targets a std type, not a workspace one.
/// Qualified (`Type::name(`) and `self.name(` calls bypass this list.
pub(crate) const STD_COLLIDING_METHODS: [&str; 34] = [
    "abs",
    "append",
    "clear",
    "clone",
    "contains",
    "contains_key",
    "default",
    "drain",
    "entry",
    "extend",
    "find",
    "first",
    "flush",
    "get",
    "get_mut",
    "insert",
    "is_empty",
    "iter",
    "last",
    "len",
    "max",
    "min",
    "new",
    "next",
    "pop",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "sort",
    "split",
    "take",
    "write",
];

/// One syntactic call site on a preprocessed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite<'a> {
    /// The called fn's simple name.
    pub name: &'a str,
    /// The path segment before `::` for `Type::name(` / `mod::name(`.
    pub qualifier: Option<&'a str>,
    /// True for `.name(` method calls.
    pub method: bool,
    /// True when a method call's receiver is literally `self`.
    pub on_self: bool,
}

impl Graph {
    /// Build the graph over every non-test fn in library files of the
    /// simulation dependency closure (`GRAPH_CRATES`).
    pub fn build(sources: &[SourceFile], trees: &[ItemTree]) -> Graph {
        Graph::build_for(sources, trees, &GRAPH_CRATES)
    }

    /// Build the graph over every non-test fn in library files of the
    /// named crates. Analyses that need a wider closure than the
    /// panic-reachability pass (e.g. the nondeterminism taint, which
    /// must see the bench driver's report pipeline) pass their own
    /// crate list here.
    pub fn build_for(sources: &[SourceFile], trees: &[ItemTree], crates: &[&str]) -> Graph {
        let mut g = Graph::default();
        // Pass 1: register all fn nodes by simple name.
        for (fi, tree) in trees.iter().enumerate() {
            if sources[fi].kind != FileKind::Lib
                || !crates.contains(&sources[fi].crate_name.as_str())
            {
                continue;
            }
            for (ii, item) in tree.fns() {
                if item.in_test {
                    continue;
                }
                g.by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push((fi, ii));
            }
        }
        // The `impl`/`trait` type a fn is declared in, if any.
        let parent_type = |(fi, ii): NodeId| -> Option<&str> {
            let item = trees[fi].items.get(ii)?;
            let parent = trees[fi].items.get(item.parent?)?;
            matches!(
                parent.kind,
                crate::items::ItemKind::Impl | crate::items::ItemKind::Trait
            )
            .then_some(parent.name.as_str())
        };
        // Pass 2: scan bodies for calls and panic sites.
        for (fi, tree) in trees.iter().enumerate() {
            if sources[fi].kind != FileKind::Lib
                || !crates.contains(&sources[fi].crate_name.as_str())
            {
                continue;
            }
            let file = &sources[fi];
            for (ii, item) in tree.fns() {
                if item.in_test || item.body_start == 0 {
                    continue;
                }
                let node = (fi, ii);
                let own_type = parent_type(node);
                let mut callees: BTreeSet<NodeId> = BTreeSet::new();
                let mut sites = Vec::new();
                for line_no in item.body_start..=item.body_end {
                    let Some(line) = file.lines.get(line_no - 1) else {
                        continue;
                    };
                    if line.in_test {
                        continue;
                    }
                    let code = &line.code;
                    for call in call_sites(code) {
                        if call.name == item.name && line_no == item.decl_line {
                            continue; // the declaration itself
                        }
                        let Some(defs) = g.by_name.get(call.name) else {
                            continue;
                        };
                        // What kind of definition may this call target?
                        enum Want<'a> {
                            MethodOf(&'a str),
                            AnyMethod,
                            FreeFn,
                        }
                        let want = match call.qualifier {
                            Some("Self") => match own_type {
                                Some(t) => Want::MethodOf(t),
                                None => continue,
                            },
                            Some(q) if q.starts_with(char::is_uppercase) => Want::MethodOf(q),
                            Some(_) => Want::FreeFn, // module path
                            None if call.on_self => match own_type {
                                Some(t) => Want::MethodOf(t),
                                None => continue,
                            },
                            None if call.method => {
                                if STD_COLLIDING_METHODS.contains(&call.name) {
                                    continue; // receiver is almost surely a std type
                                }
                                Want::AnyMethod
                            }
                            None => Want::FreeFn,
                        };
                        for &def in defs {
                            let def_type = parent_type(def);
                            let ok = match want {
                                Want::MethodOf(t) => def_type == Some(t),
                                Want::AnyMethod => def_type.is_some(),
                                Want::FreeFn => def_type.is_none(),
                            };
                            if ok {
                                callees.insert(def);
                            }
                        }
                    }
                    for token in PANIC_BODY_TOKENS {
                        for _ in 0..crate::rules::count_occurrences(code, token) {
                            sites.push(PanicSite {
                                token: token.to_owned(),
                                line: line_no,
                            });
                        }
                    }
                    if has_slice_index(code) {
                        sites.push(PanicSite {
                            token: "slice-index".to_owned(),
                            line: line_no,
                        });
                    }
                }
                callees.remove(&node);
                g.calls.insert(node, callees.into_iter().collect());
                if !sites.is_empty() {
                    g.panics.insert(node, sites);
                }
            }
        }
        g
    }

    /// Shortest call path (as node list) from `from` to any panic
    /// source, or None when no panic is reachable. Deterministic: BFS
    /// over the sorted adjacency.
    pub fn panic_path(&self, from: NodeId) -> Option<Vec<NodeId>> {
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        seen.insert(from);
        while let Some(node) = queue.pop_front() {
            if self.panics.contains_key(&node) {
                let mut path = vec![node];
                let mut cur = node;
                while cur != from {
                    let Some(&p) = prev.get(&cur) else { break };
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if let Some(callees) = self.calls.get(&node) {
                for &next in callees {
                    if seen.insert(next) {
                        prev.insert(next, node);
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }
}

/// Report pub API fns of the simulation crates that can transitively
/// reach a panic.
pub fn panic_reachability(
    sources: &[SourceFile],
    trees: &[ItemTree],
    graph: &Graph,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, tree) in trees.iter().enumerate() {
        let file = &sources[fi];
        if file.kind != FileKind::Lib || !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (ii, item) in tree.fns() {
            if item.in_test || !item.is_api(&tree.items) {
                continue;
            }
            let Some(path) = graph.panic_path((fi, ii)) else {
                continue;
            };
            out.push(Finding {
                rule: Rule::PanicReach,
                file: file.rel_path.clone(),
                line: item.decl_line,
                token: item.qualified_name(&tree.items),
                message: describe_path(sources, trees, graph, &path),
            });
        }
    }
    out
}

/// `service → positioning → slice-index at crates/…/disk.rs:193`.
fn describe_path(
    sources: &[SourceFile],
    trees: &[ItemTree],
    graph: &Graph,
    path: &[NodeId],
) -> String {
    let name_of = |&(fi, ii): &NodeId| -> String {
        trees[fi]
            .items
            .get(ii)
            .map(|i: &Item| i.qualified_name(&trees[fi].items))
            .unwrap_or_default()
    };
    let chain: Vec<String> = path.iter().map(|n| name_of(n)).collect();
    let site = path
        .last()
        .and_then(|n| graph.panics.get(n).and_then(|s| s.first().map(|s| (n, s))));
    match site {
        Some((&(fi, _), site)) => format!(
            "pub API can reach {} at {}:{} via {}",
            site.token,
            sources[fi].rel_path,
            site.line,
            chain.join(" -> ")
        ),
        None => format!("pub API can reach a panic via {}", chain.join(" -> ")),
    }
}

/// Call-ish identifiers on one preprocessed line, names only.
pub fn call_names(code: &str) -> Vec<&str> {
    call_sites(code).into_iter().map(|c| c.name).collect()
}

/// Syntactic call sites on one preprocessed line: `foo(`, `.foo(` and
/// `path::foo(` (macros `foo!(` and control-flow keywords excluded).
pub fn call_sites(code: &str) -> Vec<CallSite<'_>> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'(' {
            // Walk back over the identifier directly before `(`.
            let mut start = i;
            while start > 0
                && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
            {
                start -= 1;
            }
            if start < i {
                let before = if start > 0 { bytes[start - 1] } else { b' ' };
                let name = &code[start..i];
                let keyword = matches!(
                    name,
                    "if" | "while"
                        | "for"
                        | "match"
                        | "return"
                        | "fn"
                        | "loop"
                        | "in"
                        | "as"
                        | "let"
                        | "else"
                        | "move"
                        | "Some"
                        | "Ok"
                        | "Err"
                        | "None"
                );
                let numeric = name
                    .as_bytes()
                    .first()
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(true);
                if !keyword && !numeric && before != b'!' {
                    let method = before == b'.';
                    let qualifier = (before == b':' && start >= 2 && bytes[start - 2] == b':')
                        .then(|| ident_before(code, start - 2))
                        .filter(|q| !q.is_empty());
                    let on_self = method && ident_before(code, start - 1) == "self";
                    out.push(CallSite {
                        name,
                        qualifier,
                        method,
                        on_self,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// The identifier ending at byte `end` (exclusive).
fn ident_before(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    &code[start..end]
}

/// Does the line contain an indexing expression `expr[…]`?
pub fn has_slice_index(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with('#') {
        return false; // attribute, e.g. `#[derive(…)]`
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev == b')' || prev == b']' {
            return true;
        }
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            // Walk back over the word; keywords in type position
            // (`&mut [u8]`) are not indexing.
            let mut start = i - 1;
            while start > 0
                && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
            {
                start -= 1;
            }
            let word = &code[start..i];
            if !NON_INDEX_WORDS.contains(&word) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::preprocess;

    fn sources(files: &[(&str, &str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(path, krate, src)| SourceFile {
                rel_path: (*path).to_owned(),
                crate_name: (*krate).to_owned(),
                kind: FileKind::Lib,
                lines: preprocess(src),
            })
            .collect()
    }

    #[test]
    fn call_names_extracts_calls_not_macros() {
        let names = call_names("let x = helper(a) + obj.method(b); go!(c); if (x) {}");
        assert_eq!(names, ["helper", "method"]);
    }

    #[test]
    fn slice_index_detection() {
        assert!(has_slice_index("let a = v[0];"));
        assert!(has_slice_index("m[i][j] = 1;"));
        assert!(!has_slice_index("fn f(v: &mut [u8]) {"));
        assert!(!has_slice_index("let a: [u8; 4] = x;"));
        assert!(!has_slice_index("#[derive(Debug)]"));
        assert!(!has_slice_index("let v = vec![1, 2];"));
    }

    #[test]
    fn transitive_panic_is_reported_for_pub_api() {
        let srcs = sources(&[(
            "crates/ff-sim/src/lib.rs",
            "ff-sim",
            "pub fn api(v: &[u8]) -> u8 {\n    helper(v)\n}\nfn helper(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\npub fn clean() -> u8 {\n    0\n}\n",
        )]);
        let trees = items::build(&srcs);
        let g = Graph::build(&srcs, &trees);
        let findings = panic_reachability(&srcs, &trees, &g);
        let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["api"], "{findings:?}");
        assert!(
            findings[0].message.contains("api -> helper"),
            "{}",
            findings[0].message
        );
        assert!(findings[0].message.contains(".unwrap()"));
    }

    #[test]
    fn direct_slice_index_is_a_source() {
        let srcs = sources(&[(
            "crates/ff-cache/src/lib.rs",
            "ff-cache",
            "pub fn head(v: &[u8]) -> u8 {\n    v[0]\n}\n",
        )]);
        let trees = items::build(&srcs);
        let g = Graph::build(&srcs, &trees);
        let findings = panic_reachability(&srcs, &trees, &g);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("slice-index"));
    }

    #[test]
    fn non_sim_crates_are_not_reported() {
        let srcs = sources(&[(
            "crates/ff-base/src/lib.rs",
            "ff-base",
            "pub fn head(v: &[u8]) -> u8 {\n    v[0]\n}\n",
        )]);
        let trees = items::build(&srcs);
        let g = Graph::build(&srcs, &trees);
        assert!(panic_reachability(&srcs, &trees, &g).is_empty());
    }

    #[test]
    fn cross_file_resolution_links_by_name() {
        let srcs = sources(&[
            (
                "crates/ff-sim/src/lib.rs",
                "ff-sim",
                "pub fn run() {\n    deep_helper();\n}\n",
            ),
            (
                "crates/ff-sim/src/util.rs",
                "ff-sim",
                "pub fn deep_helper() {\n    panic!(\"boom\")\n}\n",
            ),
        ]);
        let trees = items::build(&srcs);
        let g = Graph::build(&srcs, &trees);
        let findings = panic_reachability(&srcs, &trees, &g);
        let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["run", "deep_helper"]);
    }
}
