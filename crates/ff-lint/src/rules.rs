//! The eighteen rule families.
//!
//! Every rule emits [`Finding`]s keyed by `(rule, file, token)`. Line
//! numbers are reported for humans but are *not* part of the baseline
//! key, so moving code around does not churn the ratchet — only adding
//! an occurrence of a token to a file does.

use crate::scan::{FileKind, SourceFile};
use std::collections::BTreeMap;
use std::fmt;

/// Rule family identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock time, ambient RNG and unordered-map iteration in
    /// simulation crates.
    Determinism,
    /// `unwrap`/`expect`/`panic!`-family calls in library code.
    PanicSafety,
    /// Public APIs of the simulation crates that can transitively reach
    /// a panic site through the workspace call graph.
    PanicReach,
    /// Raw `as` numeric casts and `f64`-seconds leakage in device/sim
    /// hot paths where ff-base newtypes exist.
    UnitSafety,
    /// Mixed time units flowing through let-bindings and call sites
    /// (`_us` added to `_s`, microseconds passed to a seconds param).
    UnitFlow,
    /// `==`/`!=` against float literals.
    FloatEq,
    /// The DK23DA / Aironet 350 constant tables must satisfy the paper's
    /// §3 invariants.
    ModelInvariants,
    /// The extracted DK23DA / Aironet 350 state machines must be
    /// exhaustive, reachable, deadlock-free, and keep their timeout arms.
    Fsm,
    /// Work-marker inventory and lint-suppression audit.
    Hygiene,
    /// Unit facts propagated *across* function calls through the
    /// workspace call graph: mismatched arguments, returns, and
    /// joule/byte dimension mixing the intra-procedural pass misses.
    UnitFlowInterproc,
    /// Numeric literals that shadow a canonical Table 1/Table 2 constant
    /// instead of citing `ff_device::consts`, and drift between that
    /// module and the lint's pinned registry.
    ConstProvenance,
    /// Every reachable device-state transition must be visible to the
    /// observability layer (a `StateMeter` record near the assignment,
    /// drained into `record::Event` by the simulator).
    EventCoverage,
    /// The cross-product automaton of every extracted state machine
    /// (disk × WNIC × server path) must be deadlock-free, fully
    /// reachable, recover from every degraded state, keep backoff
    /// ladders bounded, and never leave a powered-off component state
    /// except through its powered-transition edge.
    ProductFsm,
    /// Interprocedural nondeterminism taint: no wall-clock read, env
    /// access, or unordered-map iteration may flow (through any chain
    /// of helpers) into `SimReport`, recorder output, or bench JSON.
    NondetTaint,
    /// Replayed observe/chaos JSONL traces must only take transitions
    /// the static product automaton contains.
    TraceConformance,
    /// Interval-proven arithmetic safety: division-by-zero freedom,
    /// lossy `as` casts the inferred range cannot justify, and
    /// unchecked `+`/`*` on `_bytes`/`_us` counters where saturating or
    /// `ff_base::checked` alternatives exist.
    ArithSafety,
    /// Every `_j`/energy accumulation must be provably non-negative and
    /// battery drain functions monotone (abstract-interpretation wave).
    EnergyBounds,
    /// Statically prove the §3 timeout ordering — T_breakeven < disk
    /// idle timeout < outage-retry clamp ceiling, PSM knee below the
    /// disk knee — from the Table 1/2 registry, and that every backoff
    /// ladder shift is clamped and overflow-free.
    TimeoutOrder,
}

impl Rule {
    /// Stable string id (used in baselines and JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic-safety",
            Rule::PanicReach => "panic-reachability",
            Rule::UnitSafety => "unit-safety",
            Rule::UnitFlow => "unit-flow",
            Rule::FloatEq => "float-eq",
            Rule::ModelInvariants => "model-invariants",
            Rule::Fsm => "fsm",
            Rule::Hygiene => "hygiene",
            Rule::UnitFlowInterproc => "unit-flow-interproc",
            Rule::ConstProvenance => "const-provenance",
            Rule::EventCoverage => "event-coverage",
            Rule::ProductFsm => "fsm-product",
            Rule::NondetTaint => "nondet-taint",
            Rule::TraceConformance => "trace-conformance",
            Rule::ArithSafety => "arith-safety",
            Rule::EnergyBounds => "energy-bounds",
            Rule::TimeoutOrder => "timeout-order",
        }
    }

    /// All families, in report order.
    pub fn all() -> [Rule; 18] {
        [
            Rule::Determinism,
            Rule::PanicSafety,
            Rule::PanicReach,
            Rule::UnitSafety,
            Rule::UnitFlow,
            Rule::FloatEq,
            Rule::ModelInvariants,
            Rule::Fsm,
            Rule::Hygiene,
            Rule::UnitFlowInterproc,
            Rule::ConstProvenance,
            Rule::EventCoverage,
            Rule::ProductFsm,
            Rule::NondetTaint,
            Rule::TraceConformance,
            Rule::ArithSafety,
            Rule::EnergyBounds,
            Rule::TimeoutOrder,
        ]
    }

    /// Parse a stable id back into a rule.
    pub fn from_str_id(s: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.as_str() == s)
    }

    /// SARIF severity level for the family.
    ///
    /// Families whose findings falsify the model (a panic, a broken
    /// invariant, a provably-wrong range) export as `error`; style and
    /// drift families export as `warning`; the inventory family as
    /// `note`.
    pub fn severity(self) -> &'static str {
        match self {
            Rule::PanicSafety
            | Rule::PanicReach
            | Rule::ModelInvariants
            | Rule::Fsm
            | Rule::ProductFsm
            | Rule::TraceConformance
            | Rule::ArithSafety
            | Rule::EnergyBounds
            | Rule::TimeoutOrder => "error",
            Rule::Hygiene => "note",
            _ => "warning",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule family.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The matched token (baseline key component).
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Crates whose library code must be deterministic: simulation state may
/// only come from `ff_base::rng` (seeded) and simulated `ff_base::time`.
/// `ff-base` itself hosts those wrappers; `ff-trace` replays recorded
/// traces; neither holds live simulation state.
pub const DETERMINISM_CRATES: [&str; 5] =
    ["ff-sim", "ff-device", "ff-cache", "ff-policy", "ff-profile"];

/// Crates whose hot paths must keep quantities in ff-base newtypes.
const UNIT_CRATES: [&str; 2] = ["ff-device", "ff-sim"];

const DETERMINISM_TOKENS: [(&str, &str); 5] = [
    (
        "Instant",
        "wall-clock time in simulation code; use ff_base::SimTime",
    ),
    (
        "SystemTime",
        "wall-clock time in simulation code; use ff_base::SimTime",
    ),
    (
        "thread_rng",
        "ambient OS-seeded RNG; use ff_base::seeded_rng",
    ),
    (
        "HashMap",
        "iteration order is randomized per-process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is randomized per-process; use BTreeSet",
    ),
];

const PANIC_TOKENS: [(&str, &str); 5] = [
    (".unwrap()", "library code must propagate errors, not abort"),
    // The quote disambiguates `Option::expect("msg")` from unrelated
    // methods named `expect` (e.g. a parser's `expect(b'{')`).
    (
        ".expect(\"",
        "library code must propagate errors, not abort",
    ),
    ("panic!", "library code must propagate errors, not abort"),
    (
        "unreachable!",
        "prefer a typed error or debug_assert over aborting",
    ),
    ("todo!", "unfinished code path in library code"),
];

const CAST_TOKENS: [&str; 8] = [
    "as f64", "as f32", "as u64", "as u32", "as usize", "as i64", "as i32", "as u8",
];

/// Run every rule over the scanned sources.
pub fn run_all(sources: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in sources {
        determinism(file, &mut findings);
        panic_safety(file, &mut findings);
        unit_safety(file, &mut findings);
        float_eq(file, &mut findings);
        hygiene(file, &mut findings);
    }
    model_invariants(sources, &mut findings);
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.token).cmp(&(b.rule, &b.file, b.line, &b.token))
    });
    findings
}

/// Rule 1: determinism.
fn determinism(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(token, why) in &DETERMINISM_TOKENS {
            for _ in 0..count_word(&line.code, token) {
                out.push(Finding {
                    rule: Rule::Determinism,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: token.to_owned(),
                    message: why.to_owned(),
                });
            }
        }
    }
}

/// Rule 2: panic-safety.
fn panic_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(token, why) in &PANIC_TOKENS {
            let n = if token.ends_with('!') {
                count_word(&line.code, token)
            } else {
                count_substr(&line.code, token)
            };
            for _ in 0..n {
                out.push(Finding {
                    rule: Rule::PanicSafety,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: token.to_owned(),
                    message: why.to_owned(),
                });
            }
        }
    }
}

/// Rule 3: unit-safety.
fn unit_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !UNIT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in CAST_TOKENS {
            for _ in 0..count_word(&line.code, token) {
                out.push(Finding {
                    rule: Rule::UnitSafety,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: token.to_owned(),
                    message: "raw numeric cast in a hot path; prefer ff-base newtype \
                              constructors/accessors"
                        .to_owned(),
                });
            }
        }
        for _ in 0..count_word(&line.code, "as_secs_f64") {
            // Unwrapping a Dur to f64 seconds is fine at an energy
            // integration boundary but flagged so new arithmetic on raw
            // seconds is a conscious decision.
            out.push(Finding {
                rule: Rule::UnitSafety,
                file: file.rel_path.clone(),
                line: idx + 1,
                token: "as_secs_f64".to_owned(),
                message: "raw f64-seconds arithmetic; keep durations in Dur where possible"
                    .to_owned(),
            });
        }
    }
}

/// Rule 4: float equality.
fn float_eq(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind == FileKind::Test {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let bytes = code.as_bytes();
        let mut search = 0;
        while let Some(rel) = code[search..].find(['=', '!']) {
            let pos = search + rel;
            search = pos + 1;
            if pos + 1 >= bytes.len() || bytes[pos + 1] != b'=' {
                continue;
            }
            let op = &code[pos..pos + 2];
            if op == "==" {
                // Skip <=, >=, != tails and == run-ons.
                if pos > 0 && matches!(bytes[pos - 1], b'<' | b'>' | b'!' | b'=') {
                    continue;
                }
                if pos + 2 < bytes.len() && bytes[pos + 2] == b'=' {
                    continue;
                }
            } else if op != "!=" {
                continue;
            }
            let left = token_before(code, pos);
            let right = token_after(code, pos + 2);
            if is_floatish(left) || is_floatish(right) {
                out.push(Finding {
                    rule: Rule::FloatEq,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: format!("{op} {}", if is_floatish(right) { right } else { left }),
                    message: "float equality comparison; compare with a tolerance or \
                              total_cmp"
                        .to_owned(),
                });
            }
            search = pos + 2;
        }
    }
}

/// Rule 6: hygiene — open-work markers (comments) and `#[allow(` (code).
fn hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        for marker in ["TODO", "FIXME"] {
            for _ in 0..count_word(&line.comment, marker) {
                out.push(Finding {
                    rule: Rule::Hygiene,
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    token: marker.to_owned(),
                    message: "open work marker; resolve or track in ROADMAP.md".to_owned(),
                });
            }
        }
        for _ in 0..count_substr(&line.code, "#[allow(") {
            out.push(Finding {
                rule: Rule::Hygiene,
                file: file.rel_path.clone(),
                line: idx + 1,
                token: "#[allow]".to_owned(),
                message: "lint suppression; justify in a comment or remove".to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: model invariants (paper §3, Tables 1 & 2)
// ---------------------------------------------------------------------

/// A `field: Ctor(number)` binding extracted from a constructor body.
#[derive(Debug, Clone)]
struct FieldLit {
    name: String,
    ctor: String,
    /// Value normalised to base units (seconds for durations).
    value: f64,
    line: usize,
}

/// Validate the hard-coded device tables against the paper's §3
/// parameters. A missing table or field is itself a finding — the rule
/// must not silently pass when the code it audits moves.
fn model_invariants(sources: &[SourceFile], out: &mut Vec<Finding>) {
    let disk_file = "crates/ff-device/src/disk.rs";
    let wnic_file = "crates/ff-device/src/wnic.rs";
    // The constructors cite `consts::NAME` rather than raw literals, so
    // resolve named constants through the ff-device registry module.
    let ctab = crate::consts::const_table(sources);
    let disk = parse_ctor(sources, disk_file, "fn hitachi_dk23da", &ctab);
    let wnic = parse_ctor(sources, wnic_file, "fn cisco_aironet350", &ctab);

    let Some(disk) = disk else {
        fail(
            out,
            disk_file,
            1,
            "table-missing",
            "hitachi_dk23da() table not found".into(),
        );
        return;
    };
    let Some(wnic) = wnic else {
        fail(
            out,
            wnic_file,
            1,
            "table-missing",
            "cisco_aironet350() table not found".into(),
        );
        return;
    };

    // (a) Every power and energy constant is non-negative.
    for (file, fields) in [(disk_file, &disk), (wnic_file, &wnic)] {
        for f in fields {
            if (f.ctor == "Watts" || f.ctor == "Joules") && f.value < 0.0 {
                fail(
                    out,
                    file,
                    f.line,
                    &format!("negative:{}", f.name),
                    format!("{} = {} must be non-negative", f.name, f.value),
                );
            }
        }
    }

    // (b) Disk power-state ordering and the §3.1 timeouts.
    let (active, _) = require(out, disk_file, &disk, "active_power");
    let (idle, idle_ln) = require(out, disk_file, &disk, "idle_power");
    let (standby, _) = require(out, disk_file, &disk, "standby_power");
    let (spinup_e, _) = require(out, disk_file, &disk, "spinup_energy");
    let (spindown_e, _) = require(out, disk_file, &disk, "spindown_energy");
    let (spinup_t, _) = require(out, disk_file, &disk, "spinup_time");
    let (spindown_t, _) = require(out, disk_file, &disk, "spindown_time");
    let (disk_timeout, timeout_ln) = require(out, disk_file, &disk, "timeout");

    if !(standby < idle && idle <= active) {
        fail(
            out,
            disk_file,
            idle_ln,
            "power-ordering",
            format!("expected standby < idle <= active, got {standby} / {idle} / {active}"),
        );
    }
    if (disk_timeout - 20.0).abs() > 1e-9 {
        fail(
            out,
            disk_file,
            timeout_ln,
            "timeout-20s",
            format!("§3.1 fixes the disk spin-down timeout at 20 s, got {disk_timeout} s"),
        );
    }
    // (c) Spin-down must pay for itself within the fixed timeout: the
    // break-even time (transition energy recovered at idle−standby watts,
    // floored by the transition time itself) has to be under 20 s or the
    // timeout policy would never save energy.
    if idle > standby {
        let trans_t = spinup_t + spindown_t;
        let breakeven =
            ((spinup_e + spindown_e - standby * trans_t) / (idle - standby)).max(trans_t);
        if !(breakeven > 0.0) || breakeven >= disk_timeout {
            fail(
                out,
                disk_file,
                timeout_ln,
                "breakeven",
                format!(
                    "break-even time {breakeven:.2} s must be positive and below the \
                     {disk_timeout} s timeout"
                ),
            );
        }
    }

    // (d) WNIC mode ordering and the §3.1 800 ms CAM→PSM timeout.
    let (psm_idle, psm_ln) = require(out, wnic_file, &wnic, "psm_idle");
    let (cam_idle, _) = require(out, wnic_file, &wnic, "cam_idle");
    let (psm_timeout, pt_ln) = require(out, wnic_file, &wnic, "psm_timeout");
    if !(psm_idle < cam_idle) {
        fail(
            out,
            wnic_file,
            psm_ln,
            "psm-below-cam",
            format!("PSM idle power {psm_idle} W must be below CAM idle {cam_idle} W"),
        );
    }
    if (psm_timeout - 0.8).abs() > 1e-9 {
        fail(
            out,
            wnic_file,
            pt_ln,
            "psm-timeout-800ms",
            format!("§3.1 fixes the CAM→PSM timeout at 800 ms, got {psm_timeout} s"),
        );
    }
    // (e) Timeout ordering across devices: the WNIC drops to PSM long
    // before the disk would spin down, as the paper's energy argument
    // assumes.
    if !(psm_timeout < disk_timeout) {
        fail(
            out,
            wnic_file,
            pt_ln,
            "timeout-ordering",
            format!(
                "CAM→PSM timeout {psm_timeout} s must be below the disk spin-down \
                 timeout {disk_timeout} s"
            ),
        );
    }

    // (f) All literal 802.11b link rates in ff-device are from the
    // standard's set {1, 2, 5.5, 11} Mbps.
    for file in sources {
        if file.crate_name != "ff-device" || file.kind != FileKind::Lib {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for arg in call_args(&line.code, "from_mbit_per_sec(") {
                if let Some(v) = parse_num(&arg).or_else(|| resolve_const(&arg, &ctab)) {
                    if !allowed_rate(v) {
                        fail(
                            out,
                            &file.rel_path,
                            idx + 1,
                            "bandwidth-set",
                            format!("{v} Mbps is not an 802.11b rate (1, 2, 5.5, 11)"),
                        );
                    }
                }
            }
        }
    }
}

/// Is `v` one of the 802.11b rates {1, 2, 5.5, 11} Mbps?
fn allowed_rate(v: f64) -> bool {
    [1.0f64, 2.0, 5.5, 11.0]
        .iter()
        .any(|r| (r - v).abs() < 1e-9)
}

/// Record one model-invariant violation.
fn fail(out: &mut Vec<Finding>, file: &str, line: usize, token: &str, message: String) {
    out.push(Finding {
        rule: Rule::ModelInvariants,
        file: file.to_owned(),
        line,
        token: token.to_owned(),
        message,
    });
}

/// Look up a field the invariants depend on; its absence is a finding.
fn require(out: &mut Vec<Finding>, file: &str, fields: &[FieldLit], name: &str) -> (f64, usize) {
    match fields
        .iter()
        .find(|f| f.name == name)
        .map(|f| (f.value, f.line))
    {
        Some(v) => v,
        None => {
            fail(
                out,
                file,
                1,
                &format!("field-missing:{name}"),
                format!("expected literal field `{name}` in the device table"),
            );
            (f64::NAN, 1)
        }
    }
}

/// Extract `field: Ctor(lit-or-const)` bindings from the body of the
/// constructor starting at the line containing `marker` in `rel_path`.
fn parse_ctor(
    sources: &[SourceFile],
    rel_path: &str,
    marker: &str,
    ctab: &BTreeMap<String, f64>,
) -> Option<Vec<FieldLit>> {
    let file = sources.iter().find(|f| f.rel_path == rel_path)?;
    let start = file.lines.iter().position(|l| l.code.contains(marker))?;
    let mut fields = Vec::new();
    let mut depth = 0i64;
    let mut opened = false;
    for (off, line) in file.lines[start..].iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(f) = parse_field_line(&line.code, start + off + 1, ctab) {
            fields.push(f);
        }
        if opened && depth <= 0 {
            break;
        }
    }
    Some(fields)
}

/// Resolve a `consts::NAME`-style argument through the extracted
/// registry module; the lookup key is the last path segment.
pub(crate) fn resolve_const(arg: &str, ctab: &BTreeMap<String, f64>) -> Option<f64> {
    let last = arg.trim().rsplit("::").next()?.trim();
    if last.is_empty() || !last.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    ctab.get(last).copied()
}

/// Match `ident: Path::ctor(number-or-const)` on one (trimmed) line.
fn parse_field_line(code: &str, line_no: usize, ctab: &BTreeMap<String, f64>) -> Option<FieldLit> {
    let trimmed = code.trim().trim_end_matches(',');
    let (name, rest) = trimmed.split_once(':')?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let open = rest.find('(')?;
    let close = rest.rfind(')')?;
    if close <= open {
        return None;
    }
    let ctor_path = &rest[..open];
    let arg = &rest[open + 1..close];
    let value = parse_num(arg).or_else(|| resolve_const(arg, ctab))?;
    // Normalise durations to seconds via the constructor name.
    let last = ctor_path.rsplit("::").next().unwrap_or(ctor_path).trim();
    let first = ctor_path.split("::").next().unwrap_or(ctor_path).trim();
    let (ctor, value) = match last {
        "from_secs" | "from_secs_f64" => ("Dur", value),
        "from_millis" => ("Dur", value / 1e3),
        "from_micros" => ("Dur", value / 1e6),
        "Watts" => ("Watts", value),
        "Joules" => ("Joules", value),
        _ if first == "Watts" => ("Watts", value),
        _ if first == "Joules" => ("Joules", value),
        other => (other, value),
    };
    Some(FieldLit {
        name: name.to_owned(),
        ctor: ctor.to_owned(),
        value,
        line: line_no,
    })
}

/// Parse a numeric literal, tolerating `_` separators and type suffixes.
pub(crate) fn parse_num(s: &str) -> Option<f64> {
    let cleaned: String = s
        .trim()
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .chars()
        .filter(|&c| c != '_')
        .collect();
    if cleaned.is_empty()
        || !cleaned
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '-' || c == '+')
    {
        return None;
    }
    cleaned.parse().ok()
}

/// Literal first arguments of each `needle`-call on the line.
pub(crate) fn call_args(code: &str, needle: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(rel) = code[search..].find(needle) {
        let start = search + rel + needle.len();
        let rest = &code[start..];
        let end = rest.find([')', ',']).unwrap_or(rest.len());
        out.push(rest[..end].trim().to_owned());
        search = start;
    }
    out
}

// ---------------------------------------------------------------------
// Token matching helpers
// ---------------------------------------------------------------------

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Occurrences of `token` with identifier boundaries on both sides.
fn count_word(haystack: &str, token: &str) -> usize {
    let hb = haystack.as_bytes();
    let first = token.as_bytes().first().copied().unwrap_or(b' ');
    let last = token.as_bytes().last().copied().unwrap_or(b' ');
    let mut n = 0;
    let mut search = 0;
    while let Some(rel) = haystack[search..].find(token) {
        let pos = search + rel;
        let before_ok = pos == 0 || !is_ident_char(hb[pos - 1]) || !is_ident_char(first);
        let after = pos + token.len();
        let after_ok = after >= hb.len() || !is_ident_char(hb[after]) || !is_ident_char(last);
        if before_ok && after_ok {
            n += 1;
        }
        search = pos + token.len();
    }
    n
}

/// Count occurrences the same way panic-safety does: word-boundary
/// match for macro-style `…!` tokens, plain substring otherwise (those
/// tokens carry their own punctuation boundaries, like `.unwrap()`).
pub(crate) fn count_occurrences(haystack: &str, token: &str) -> usize {
    if token.ends_with('!') {
        count_word(haystack, token)
    } else {
        count_substr(haystack, token)
    }
}

/// Plain substring occurrences (for tokens that carry their own
/// punctuation boundaries, like `.unwrap()`).
fn count_substr(haystack: &str, token: &str) -> usize {
    let mut n = 0;
    let mut search = 0;
    while let Some(rel) = haystack[search..].find(token) {
        n += 1;
        search = search + rel + token.len();
    }
    n
}

/// The expression-ish token immediately left of byte `pos`.
fn token_before(code: &str, pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = pos;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (is_ident_char(bytes[start - 1]) || bytes[start - 1] == b'.') {
        start -= 1;
    }
    &code[start..end]
}

/// The expression-ish token immediately right of byte `pos`.
fn token_after(code: &str, pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len()
        && (is_ident_char(bytes[end]) || bytes[end] == b'.' || bytes[end] == b'-')
    {
        end += 1;
    }
    &code[start..end]
}

/// Does the token look like a float literal (`1.5`, `2.`, `1e-3`, `1f64`)?
fn is_floatish(tok: &str) -> bool {
    let t = tok.trim_start_matches('-');
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let t = t.trim_end_matches("f64").trim_end_matches("f32");
    let has_dot = t.contains('.');
    let has_exp = t.contains(['e', 'E']) && !t.contains("0x");
    let is_float_suffix = t.len() < tok.trim_start_matches('-').len();
    (has_dot || has_exp || is_float_suffix)
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn file(path: &str, crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_owned(),
            crate_name: crate_name.to_owned(),
            kind,
            lines: preprocess(src),
        }
    }

    #[test]
    fn determinism_flags_hash_collections_in_sim_crates() {
        let f = file(
            "crates/ff-sim/src/x.rs",
            "ff-sim",
            FileKind::Lib,
            "use std::collections::HashMap;\nlet r = thread_rng();\n",
        );
        let mut out = Vec::new();
        determinism(&f, &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["HashMap", "thread_rng"]);
    }

    #[test]
    fn determinism_ignores_other_crates_and_tests() {
        let base = file(
            "crates/ff-base/src/x.rs",
            "ff-base",
            FileKind::Lib,
            "use std::collections::HashMap;\n",
        );
        let test_scope = file(
            "crates/ff-sim/src/x.rs",
            "ff-sim",
            FileKind::Lib,
            "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}\n",
        );
        let mut out = Vec::new();
        determinism(&base, &mut out);
        determinism(&test_scope, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_safety_spares_unwrap_or_variants() {
        let f = file(
            "crates/ff-base/src/x.rs",
            "ff-base",
            FileKind::Lib,
            "a.unwrap_or(0);\nb.unwrap();\nc.expect_err(\"no\");\nd.expect(\"msg\");\np.expect(b'{');\n",
        );
        let mut out = Vec::new();
        panic_safety(&f, &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, [".unwrap()", ".expect(\""]);
    }

    #[test]
    fn panic_safety_skips_bins() {
        let f = file(
            "src/bin/x.rs",
            "flexfetch-repro",
            FileKind::Bin,
            "a.unwrap();\n",
        );
        let mut out = Vec::new();
        panic_safety(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let f = file(
            "crates/ff-base/src/x.rs",
            "ff-base",
            FileKind::Lib,
            "if x == 1.0 { }\nif n == 1 { }\nif 0.5 != y { }\nif a <= 1.0 { }\n",
        );
        let mut out = Vec::new();
        float_eq(&f, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn hygiene_counts_markers_and_allows() {
        let f = file(
            "crates/ff-base/src/x.rs",
            "ff-base",
            FileKind::Lib,
            "// TODO: tighten\n#[allow(dead_code)]\nfn f() {}\n",
        );
        let mut out = Vec::new();
        hygiene(&f, &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["TODO", "#[allow]"]);
    }

    #[test]
    fn model_invariants_accept_the_paper_tables() {
        let disk = file(
            "crates/ff-device/src/disk.rs",
            "ff-device",
            FileKind::Lib,
            "pub fn hitachi_dk23da() -> Self {\n\
             DiskParams {\n\
             active_power: Watts(2.0),\n\
             idle_power: Watts(1.6),\n\
             standby_power: Watts(0.15),\n\
             spinup_energy: Joules(5.0),\n\
             spindown_energy: Joules(2.94),\n\
             spinup_time: Dur::from_millis(1_600),\n\
             spindown_time: Dur::from_millis(2_300),\n\
             timeout: Dur::from_secs(20),\n\
             }\n}\n",
        );
        let wnic = file(
            "crates/ff-device/src/wnic.rs",
            "ff-device",
            FileKind::Lib,
            "pub fn cisco_aironet350() -> Self {\n\
             WnicParams {\n\
             psm_idle: Watts(0.39),\n\
             cam_idle: Watts(1.41),\n\
             psm_timeout: Dur::from_millis(800),\n\
             bandwidth: BytesPerSec::from_mbit_per_sec(11.0),\n\
             }\n}\n",
        );
        let mut out = Vec::new();
        model_invariants(&[disk, wnic], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn model_invariants_reject_broken_tables() {
        let disk = file(
            "crates/ff-device/src/disk.rs",
            "ff-device",
            FileKind::Lib,
            "pub fn hitachi_dk23da() -> Self {\n\
             DiskParams {\n\
             active_power: Watts(2.0),\n\
             idle_power: Watts(-1.6),\n\
             standby_power: Watts(0.15),\n\
             spinup_energy: Joules(5.0),\n\
             spindown_energy: Joules(2.94),\n\
             spinup_time: Dur::from_millis(1_600),\n\
             spindown_time: Dur::from_millis(2_300),\n\
             timeout: Dur::from_secs(19),\n\
             }\n}\n",
        );
        let wnic = file(
            "crates/ff-device/src/wnic.rs",
            "ff-device",
            FileKind::Lib,
            "pub fn cisco_aironet350() -> Self {\n\
             WnicParams {\n\
             psm_idle: Watts(0.39),\n\
             cam_idle: Watts(1.41),\n\
             psm_timeout: Dur::from_millis(800),\n\
             bandwidth: BytesPerSec::from_mbit_per_sec(6.0),\n\
             }\n}\n",
        );
        let mut out = Vec::new();
        model_invariants(&[disk, wnic], &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert!(tokens.contains(&"negative:idle_power"), "{tokens:?}");
        assert!(tokens.contains(&"timeout-20s"), "{tokens:?}");
        assert!(tokens.contains(&"power-ordering"), "{tokens:?}");
        assert!(tokens.contains(&"bandwidth-set"), "{tokens:?}");
    }

    #[test]
    fn unit_safety_flags_casts_in_device_code() {
        let f = file(
            "crates/ff-device/src/x.rs",
            "ff-device",
            FileKind::Lib,
            "let x = n as f64;\nlet t = d.as_secs_f64();\nlet ok = Watts(2.0);\n",
        );
        let mut out = Vec::new();
        unit_safety(&f, &mut out);
        let tokens: Vec<&str> = out.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["as f64", "as_secs_f64"]);
    }
}
