//! Constant-provenance analysis.
//!
//! The paper's Table 1/Table 2 calibration values live in exactly one
//! place: `crates/ff-device/src/consts.rs`. This pass keeps that true
//! from both directions:
//!
//! * **shadowing** — any numeric literal in the audited crates
//!   (`ff-device`, `ff-policy`, `ff-sim`) that appears in a
//!   physical-constant position (`Watts(…)`, `Joules(…)`,
//!   `Dur::from_millis(…)`, `Dur::from_secs(…)`, bandwidth
//!   constructors) and equals a canonical value is a finding — the call
//!   site must cite `ff_device::consts` instead of repeating the number;
//! * **drift** — the registry below pins every canonical value; if the
//!   `consts.rs` module disagrees with it (or loses a constant), that is
//!   a finding too, so neither side can move alone.
//!
//! Deliberately *not* audited: values too generic to attribute (1 ms
//! latency, 2 ms short-seek settle) and bare counts (`1500` bytes,
//! `2048` blocks), which carry no constructor context. Test code and
//! the registry module itself are exempt.

use crate::rules::{call_args, parse_num, Finding, Rule};
use crate::scan::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Path of the single-source-of-truth module, workspace-relative.
pub const REGISTRY_PATH: &str = "crates/ff-device/src/consts.rs";

/// Crates whose library code may not shadow a canonical constant.
pub const AUDITED_CRATES: [&str; 3] = ["ff-device", "ff-policy", "ff-sim"];

/// Dimension of a canonical constant, which decides the constructor
/// contexts a shadowing literal can appear in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Power in watts — `Watts(…)`.
    Watts,
    /// Energy in joules — `Joules(…)`.
    Joules,
    /// Duration in milliseconds — `Dur::from_millis(…)` (and the
    /// seconds constructors at 1/1000 scale).
    Ms,
    /// Duration in seconds — `Dur::from_secs(…)` / `from_secs_f64(…)`
    /// (and the millis constructor at 1000× scale).
    Secs,
    /// Link bandwidth in Mbit/s — `from_mbit_per_sec(…)`.
    Mbps,
    /// Transfer bandwidth in MB/s — `from_mb_per_sec(…)`.
    MbPerSec,
    /// A bare count (bytes, blocks) with no constructor context; pinned
    /// against drift but not literal-matched.
    Count,
}

/// One canonical constant: registry name, dimension, raw value in the
/// unit named by the suffix, and whether literals are matched against
/// it (`false` for values too generic to attribute).
struct Canon {
    name: &'static str,
    kind: Kind,
    value: f64,
    audited: bool,
}

const fn canon(name: &'static str, kind: Kind, value: f64, audited: bool) -> Canon {
    Canon {
        name,
        kind,
        value,
        audited,
    }
}

/// The pinned Table 1 / Table 2 registry, mirroring
/// `ff_device::consts` (§3.1 of the paper).
const REGISTRY: [Canon; 28] = [
    // Table 1 — Hitachi DK23DA.
    canon("DISK_ACTIVE_POWER_W", Kind::Watts, 2.0, true),
    canon("DISK_IDLE_POWER_W", Kind::Watts, 1.6, true),
    canon("DISK_STANDBY_POWER_W", Kind::Watts, 0.15, true),
    canon("DISK_SPINUP_ENERGY_J", Kind::Joules, 5.0, true),
    canon("DISK_SPINDOWN_ENERGY_J", Kind::Joules, 2.94, true),
    canon("DISK_SPINUP_TIME_MS", Kind::Ms, 1_600.0, true),
    canon("DISK_SPINDOWN_TIME_MS", Kind::Ms, 2_300.0, true),
    canon("DISK_TIMEOUT_S", Kind::Secs, 20.0, true),
    canon("DISK_SEEK_MS", Kind::Ms, 13.0, true),
    canon("DISK_ROTATION_MS", Kind::Ms, 7.0, true),
    canon("DISK_BANDWIDTH_MB_S", Kind::MbPerSec, 35.0, true),
    canon("DISK_SHORT_SEEK_MS", Kind::Ms, 2.0, false),
    canon("DISK_SHORT_SEEK_BLOCKS", Kind::Count, 2_048.0, false),
    // Table 2 — Cisco Aironet 350.
    canon("WNIC_PSM_IDLE_W", Kind::Watts, 0.39, true),
    canon("WNIC_PSM_RECV_W", Kind::Watts, 1.42, true),
    canon("WNIC_PSM_SEND_W", Kind::Watts, 2.48, true),
    canon("WNIC_CAM_IDLE_W", Kind::Watts, 1.41, true),
    canon("WNIC_CAM_RECV_W", Kind::Watts, 2.61, true),
    canon("WNIC_CAM_SEND_W", Kind::Watts, 3.69, true),
    canon("WNIC_TO_PSM_TIME_MS", Kind::Ms, 410.0, true),
    canon("WNIC_TO_PSM_ENERGY_J", Kind::Joules, 0.53, true),
    canon("WNIC_TO_CAM_TIME_MS", Kind::Ms, 400.0, true),
    canon("WNIC_TO_CAM_ENERGY_J", Kind::Joules, 0.51, true),
    canon("WNIC_PSM_TIMEOUT_MS", Kind::Ms, 800.0, true),
    canon("WNIC_BANDWIDTH_MBPS", Kind::Mbps, 11.0, true),
    canon("WNIC_LATENCY_MS", Kind::Ms, 1.0, false),
    canon("WNIC_PSM_PACKET_BYTES", Kind::Count, 1_500.0, false),
    canon("WNIC_BEACON_INTERVAL_MS", Kind::Ms, 100.0, true),
];

fn registry() -> impl Iterator<Item = &'static Canon> {
    REGISTRY.iter()
}

/// Constructor contexts a shadowing literal can hide in, with the
/// dimension each implies. Longer needles first so `from_secs_f64(`
/// wins over `from_secs(`.
const CONTEXTS: [(&str, Kind); 7] = [
    ("Dur::from_secs_f64(", Kind::Secs),
    ("Dur::from_millis(", Kind::Ms),
    ("Dur::from_secs(", Kind::Secs),
    ("from_mbit_per_sec(", Kind::Mbps),
    ("from_mb_per_sec(", Kind::MbPerSec),
    ("Watts(", Kind::Watts),
    ("Joules(", Kind::Joules),
];

/// Extract `pub const NAME: ty = value;` bindings from the registry
/// module, raw (unit-suffix) values. Used both here and by the
/// model-invariants rule to evaluate the migrated constructors.
pub(crate) fn const_table(sources: &[SourceFile]) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(file) = sources.iter().find(|f| f.rel_path == REGISTRY_PATH) else {
        return out;
    };
    for line in &file.lines {
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(':') else {
            continue;
        };
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        if let Some(v) = parse_num(value.trim().trim_end_matches(';')) {
            out.insert(name.trim().to_owned(), v);
        }
    }
    out
}

/// Does canonical `c` equal literal `v` seen in a `ctx`-kind position?
/// Duration constants match across the ms/s constructors at the right
/// scale; everything else must agree in both kind and value.
fn matches(c: &Canon, ctx: Kind, v: f64) -> bool {
    let canonical_in_ctx = match (c.kind, ctx) {
        (Kind::Ms, Kind::Ms) | (Kind::Secs, Kind::Secs) => c.value,
        (Kind::Ms, Kind::Secs) => c.value / 1e3,
        (Kind::Secs, Kind::Ms) => c.value * 1e3,
        (a, b) if a == b => c.value,
        _ => return false,
    };
    (canonical_in_ctx - v).abs() < 1e-9
}

/// Run the provenance pass: literal shadowing over the audited crates,
/// plus registry-drift when the ff-device crate is in scope.
pub fn analyze(sources: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();

    for file in sources {
        if file.kind != FileKind::Lib
            || !AUDITED_CRATES.contains(&file.crate_name.as_str())
            || file.rel_path == REGISTRY_PATH
        {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for &(needle, ctx) in &CONTEXTS {
                for arg in call_args(&line.code, needle) {
                    let Some(v) = parse_num(&arg) else { continue };
                    if let Some(c) = registry().find(|c| c.audited && matches(c, ctx, v)) {
                        out.push(Finding {
                            rule: Rule::ConstProvenance,
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            token: format!("shadow:{}", c.name),
                            message: format!(
                                "literal {arg} in `{needle}…)` duplicates \
                                 ff_device::consts::{}; cite the constant instead",
                                c.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // Drift check — only meaningful when the audited device crate is in
    // the scanned tree at all (synthetic single-crate trees skip it).
    if sources.iter().any(|f| f.crate_name == "ff-device") {
        let table = const_table(sources);
        if table.is_empty() {
            out.push(Finding {
                rule: Rule::ConstProvenance,
                file: REGISTRY_PATH.to_owned(),
                line: 1,
                token: "registry-missing".to_owned(),
                message: "ff-device is present but its consts.rs registry module is \
                          missing or empty"
                    .to_owned(),
            });
        } else {
            for c in registry() {
                match table.get(c.name) {
                    None => out.push(Finding {
                        rule: Rule::ConstProvenance,
                        file: REGISTRY_PATH.to_owned(),
                        line: 1,
                        token: format!("registry-missing:{}", c.name),
                        message: format!(
                            "canonical constant {} is pinned by ff-lint but absent \
                             from ff_device::consts",
                            c.name
                        ),
                    }),
                    Some(&v) if (v - c.value).abs() > 1e-9 => out.push(Finding {
                        rule: Rule::ConstProvenance,
                        file: REGISTRY_PATH.to_owned(),
                        line: 1,
                        token: format!("registry-drift:{}", c.name),
                        message: format!(
                            "ff_device::consts::{} = {v} but the paper pins {} — \
                             update both sides deliberately or revert",
                            c.name, c.value
                        ),
                    }),
                    Some(_) => {}
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    /// The committed registry fixture used by the clean-path tests.
    const REGISTRY_SRC: &str = include_str!("../../ff-device/src/consts.rs");

    fn file(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: crate_name.to_owned(),
            kind: FileKind::Lib,
            lines: preprocess(src),
        }
    }

    fn tokens(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.token.as_str()).collect()
    }

    #[test]
    fn committed_registry_matches_the_pinned_values() {
        let sources = [file(REGISTRY_PATH, "ff-device", REGISTRY_SRC)];
        let f = analyze(&sources);
        assert!(f.is_empty(), "registry drifted from the lint pins: {f:?}");
    }

    #[test]
    fn shadowing_literal_is_flagged_with_its_canonical_name() {
        let sources = [
            file(REGISTRY_PATH, "ff-device", REGISTRY_SRC),
            file(
                "crates/ff-policy/src/x.rs",
                "ff-policy",
                "fn f() -> Joules { Joules(2.94) }\n",
            ),
        ];
        let f = analyze(&sources);
        assert_eq!(tokens(&f), ["shadow:DISK_SPINDOWN_ENERGY_J"], "{f:?}");
    }

    #[test]
    fn duration_shadowing_matches_across_scales() {
        // 20 s disk timeout written as 20_000 ms still shadows it.
        let sources = [
            file(REGISTRY_PATH, "ff-device", REGISTRY_SRC),
            file(
                "crates/ff-sim/src/x.rs",
                "ff-sim",
                "fn f() -> Dur { Dur::from_millis(20_000) }\n",
            ),
        ];
        let f = analyze(&sources);
        assert_eq!(tokens(&f), ["shadow:DISK_TIMEOUT_S"], "{f:?}");
    }

    #[test]
    fn citing_the_constant_is_clean() {
        let sources = [
            file(REGISTRY_PATH, "ff-device", REGISTRY_SRC),
            file(
                "crates/ff-sim/src/x.rs",
                "ff-sim",
                "fn f() -> Dur { Dur::from_secs(ff_device::consts::DISK_TIMEOUT_S) }\n",
            ),
        ];
        assert!(analyze(&sources).is_empty());
    }

    #[test]
    fn generic_values_and_foreign_crates_are_exempt() {
        let sources = [
            file(REGISTRY_PATH, "ff-device", REGISTRY_SRC),
            // 1 ms is too generic to attribute; ff-bench is not audited.
            file(
                "crates/ff-sim/src/x.rs",
                "ff-sim",
                "fn f() -> Dur { Dur::from_millis(1) }\n",
            ),
            file(
                "crates/ff-bench/src/x.rs",
                "ff-bench",
                "fn g() -> Watts { Watts(2.0) }\n",
            ),
        ];
        assert!(analyze(&sources).is_empty());
    }

    #[test]
    fn drifted_registry_value_is_flagged() {
        let drifted = REGISTRY_SRC.replace(
            "pub const WNIC_PSM_TIMEOUT_MS: u64 = 800;",
            "pub const WNIC_PSM_TIMEOUT_MS: u64 = 900;",
        );
        assert_ne!(drifted, REGISTRY_SRC, "replacement must hit");
        let sources = [file(REGISTRY_PATH, "ff-device", &drifted)];
        let f = analyze(&sources);
        assert_eq!(tokens(&f), ["registry-drift:WNIC_PSM_TIMEOUT_MS"], "{f:?}");
    }

    #[test]
    fn missing_registry_module_is_flagged_when_ff_device_present() {
        let sources = [file(
            "crates/ff-device/src/disk.rs",
            "ff-device",
            "pub fn f() {}\n",
        )];
        let f = analyze(&sources);
        assert_eq!(tokens(&f), ["registry-missing"], "{f:?}");
    }
}
