//! The numeric half of the wave-4 abstract domain: closed `f64`
//! intervals with `±inf` endpoints, plus the sign lattice layered on
//! top of them.
//!
//! `Interval` is a classic bounds domain: every operation returns an
//! interval guaranteed to contain all concrete results of the
//! corresponding operation on any members of the operands (soundness is
//! property-tested from `tests/absint.rs`: concrete evaluation of a
//! random expression always lands inside the inferred interval). `Sign`
//! is the coarser five-point sign lattice; `absint` carries both, plus
//! the dimension component from the dataflow wave, as a product domain.
//!
//! Design notes:
//! - Endpoints are `f64` so one domain serves integer counters, joule
//!   accumulators and float ratios alike. `NaN` never escapes: any
//!   operation that could produce it (`0 * inf`, `inf - inf`, division
//!   through zero) widens to the affected bound's infinity instead.
//! - `widen` is the standard jump-to-infinity widening used between
//!   fixpoint rounds: an endpoint that moved since the previous round
//!   is pushed straight to its infinity so iteration terminates.

use std::fmt;

/// A closed interval `[lo, hi]` over the extended reals.
///
/// Invariant: `lo <= hi` and neither bound is `NaN`. Constructors
/// normalise anything that would violate this to [`Interval::TOP`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-inf`).
    pub lo: f64,
    /// Upper bound (may be `+inf`).
    pub hi: f64,
}

impl Interval {
    /// The whole extended real line: no information.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// All non-negative values, the natural abstraction of an unsigned
    /// counter whose magnitude is unknown.
    pub const NON_NEG: Interval = Interval {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    /// `[lo, hi]`, normalising `NaN` or an inverted pair to `TOP`.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// True when no information is known.
    pub fn is_top(self) -> bool {
        self.lo.is_infinite() && self.lo < 0.0 && self.hi.is_infinite() && self.hi > 0.0
    }

    /// True when the interval is a single finite value.
    pub fn is_point(self) -> bool {
        self.lo.is_finite() && (self.hi - self.lo).abs() < f64::EPSILON
    }

    /// True when `v` lies inside the interval.
    pub fn contains(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// True when zero lies inside the interval.
    pub fn contains_zero(self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// True when every member is `>= 0`.
    pub fn is_nonneg(self) -> bool {
        self.lo >= 0.0
    }

    /// True when every member is `> 0`.
    pub fn is_pos(self) -> bool {
        self.lo > 0.0
    }

    /// True when every member is `< 0`.
    pub fn is_neg(self) -> bool {
        self.hi < 0.0
    }

    /// Least upper bound: the convex hull of the two intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Widening: any endpoint that moved versus `self` jumps to its
    /// infinity, guaranteeing fixpoint termination in one extra round.
    pub fn widen(self, next: Interval) -> Interval {
        let lo = if next.lo < self.lo {
            f64::NEG_INFINITY
        } else {
            self.lo
        };
        let hi = if next.hi > self.hi {
            f64::INFINITY
        } else {
            self.hi
        };
        Interval::new(lo, hi)
    }

    /// Interval addition.
    pub fn add(self, other: Interval) -> Interval {
        Interval::new(add_bound(self.lo, other.lo), add_bound(self.hi, other.hi))
    }

    /// Interval subtraction.
    pub fn sub(self, other: Interval) -> Interval {
        self.add(other.neg())
    }

    /// Interval negation.
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Interval multiplication (all four endpoint products).
    pub fn mul(self, other: Interval) -> Interval {
        let p = [
            mul_bound(self.lo, other.lo),
            mul_bound(self.lo, other.hi),
            mul_bound(self.hi, other.lo),
            mul_bound(self.hi, other.hi),
        ];
        let mut lo = p[0];
        let mut hi = p[0];
        for &v in &p[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::new(lo, hi)
    }

    /// Interval division. A divisor whose range includes zero widens the
    /// result to `TOP`; the `arith-safety` family reports the division
    /// itself, so the value domain only has to stay sound.
    pub fn div(self, other: Interval) -> Interval {
        if other.contains_zero() {
            return Interval::TOP;
        }
        let inv = Interval::new(1.0 / other.hi, 1.0 / other.lo);
        self.mul(inv)
    }

    /// Pointwise `max`, the abstraction of `a.max(b)`.
    pub fn max_op(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Pointwise `min`, the abstraction of `a.min(b)`.
    pub fn min_op(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Absolute value, the abstraction of `a.abs()`.
    pub fn abs_op(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.hi.max(-self.lo))
        }
    }

    /// Clamp into `[lo_bound, hi_bound]`, the abstraction of
    /// `a.clamp(lo, hi)` (and of `a.max(lo).min(hi)` chains).
    pub fn clamp_op(self, lo_bound: Interval, hi_bound: Interval) -> Interval {
        self.max_op(lo_bound).min_op(hi_bound)
    }

    /// The sign component this interval projects to.
    pub fn sign(self) -> Sign {
        if self.lo > 0.0 {
            Sign::Pos
        } else if self.hi < 0.0 {
            Sign::Neg
        } else if self.lo >= 0.0 && self.hi <= 0.0 {
            Sign::Zero
        } else if self.lo >= 0.0 {
            Sign::NonNeg
        } else if self.hi <= 0.0 {
            Sign::NonPos
        } else {
            Sign::Unknown
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// `a + b` on bounds, mapping the `inf + -inf` indeterminate to the
/// conservative side (the caller passes matching-bound pairs, so a
/// `NaN` here can only widen, never tighten).
fn add_bound(a: f64, b: f64) -> f64 {
    let v = a + b;
    if v.is_nan() {
        if a.is_infinite() {
            a
        } else {
            b
        }
    } else {
        v
    }
}

/// `a * b` on bounds with the interval-arithmetic convention
/// `0 * inf = 0` (a zero factor annihilates regardless of magnitude).
fn mul_bound(a: f64, b: f64) -> f64 {
    let az = a >= 0.0 && a <= 0.0;
    let bz = b >= 0.0 && b <= 0.0;
    if az || bz {
        return 0.0;
    }
    a * b
}

/// The five-point sign lattice (plus `Unknown`), the coarse component
/// of the wave-4 product domain. Kept alongside the interval so rules
/// can reason about polarity even after widening has discarded the
/// magnitude (an accumulator widened to `[0, +inf]` still carries
/// `NonNeg`, and sign algebra survives multiplications that send the
/// interval to `TOP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Neg,
    /// `<= 0`.
    NonPos,
    /// Exactly zero.
    Zero,
    /// `>= 0`.
    NonNeg,
    /// Strictly positive.
    Pos,
    /// No sign information.
    Unknown,
}

impl Sign {
    /// Sign addition.
    pub fn add(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, s) | (s, Zero) => s,
            (Pos, Pos) | (Pos, NonNeg) | (NonNeg, Pos) => Pos,
            (NonNeg, NonNeg) => NonNeg,
            (Neg, Neg) | (Neg, NonPos) | (NonPos, Neg) => Neg,
            (NonPos, NonPos) => NonPos,
            _ => Unknown,
        }
    }

    /// Sign multiplication.
    pub fn mul(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Pos, s) | (s, Pos) => s,
            (Neg, Neg) => Pos,
            (Neg, NonPos) | (NonPos, Neg) => NonNeg,
            (Neg, NonNeg) | (NonNeg, Neg) => NonPos,
            (NonNeg, NonPos) | (NonPos, NonNeg) => NonPos,
            (NonNeg, NonNeg) => NonNeg,
            (NonPos, NonPos) => NonNeg,
        }
    }

    /// Sign negation.
    pub fn neg(self) -> Sign {
        use Sign::*;
        match self {
            Neg => Pos,
            NonPos => NonNeg,
            Zero => Zero,
            NonNeg => NonPos,
            Pos => Neg,
            Unknown => Unknown,
        }
    }

    /// Least upper bound in the sign lattice.
    pub fn join(self, other: Sign) -> Sign {
        use Sign::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (Zero, Pos)
            | (Pos, Zero)
            | (NonNeg, Pos)
            | (Pos, NonNeg)
            | (NonNeg, Zero)
            | (Zero, NonNeg) => NonNeg,
            (Zero, Neg)
            | (Neg, Zero)
            | (NonPos, Neg)
            | (Neg, NonPos)
            | (NonPos, Zero)
            | (Zero, NonPos) => NonPos,
            _ => Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_covers_concrete_results() {
        let a = Interval::new(2.0, 4.0);
        let b = Interval::new(-1.0, 3.0);
        assert_eq!(a.add(b), Interval::new(1.0, 7.0));
        assert_eq!(a.sub(b), Interval::new(-1.0, 5.0));
        assert_eq!(a.mul(b), Interval::new(-4.0, 12.0));
        assert!(a.mul(b).contains(2.0 * -1.0));
        assert!(a.mul(b).contains(4.0 * 3.0));
    }

    #[test]
    fn division_through_zero_is_top() {
        let a = Interval::point(1.0);
        assert!(a.div(Interval::new(-1.0, 1.0)).is_top());
        assert_eq!(a.div(Interval::new(2.0, 4.0)), Interval::new(0.25, 0.5));
    }

    #[test]
    fn zero_times_infinity_annihilates() {
        let z = Interval::point(0.0);
        assert_eq!(z.mul(Interval::TOP), Interval::point(0.0));
        let counter = Interval::NON_NEG;
        assert!(counter.mul(counter).is_nonneg());
    }

    #[test]
    fn widening_jumps_moved_endpoints_to_infinity() {
        let a = Interval::new(0.0, 10.0);
        let grew = Interval::new(0.0, 12.0);
        let w = a.widen(grew);
        assert_eq!(w.lo, 0.0);
        assert!(w.hi.is_infinite());
        assert_eq!(a.widen(a), a);
    }

    #[test]
    fn clamp_and_abs_tighten() {
        let x = Interval::TOP;
        assert!(x.abs_op().is_nonneg());
        let c = x.clamp_op(Interval::point(0.0), Interval::point(5.0));
        assert_eq!(c, Interval::new(0.0, 5.0));
    }

    #[test]
    fn sign_projection_and_algebra_agree() {
        assert_eq!(Interval::new(1.0, 5.0).sign(), Sign::Pos);
        assert_eq!(Interval::NON_NEG.sign(), Sign::NonNeg);
        assert_eq!(Interval::point(0.0).sign(), Sign::Zero);
        assert_eq!(Interval::new(-3.0, -1.0).sign(), Sign::Neg);
        assert_eq!(Sign::Pos.mul(Sign::Neg), Sign::Neg);
        assert_eq!(Sign::NonNeg.add(Sign::Pos), Sign::Pos);
        assert_eq!(Sign::Pos.join(Sign::Zero), Sign::NonNeg);
        // The product stays consistent: projecting after an interval op
        // is never more precise than sign algebra claims.
        let a = Interval::new(2.0, 3.0);
        let b = Interval::new(-4.0, -1.0);
        assert_eq!(a.mul(b).sign(), a.sign().mul(b.sign()));
    }

    #[test]
    fn nan_never_escapes() {
        let t = Interval::TOP;
        for v in [t.add(t), t.sub(t), t.mul(t), t.div(t), t.neg()] {
            assert!(!v.lo.is_nan() && !v.hi.is_nan());
        }
    }
}
