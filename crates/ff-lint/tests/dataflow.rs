//! Golden tests for the interprocedural unit-flow family across a
//! crate boundary: a device crate exports functions whose signatures
//! carry unit suffixes, and a simulator crate consumes them. The
//! summaries are built over the whole workspace tree, so a millisecond
//! value produced in one crate and spent as microseconds in another is
//! visible even though no single file shows both suffixes.
//!
//! The sources are scanned, never compiled, so the snippets stay small.

use ff_lint::{analyze, Finding, Rule};
use std::path::PathBuf;

/// Device crate: a free producer with a `_ms` return and a method with
/// a `_us` parameter, both summarised from their signatures.
const DEVICE: &str = "
pub fn last_beacon_ms() -> u64 {
    42
}

impl Meter {
    pub fn push_us(&mut self, ts_us: u64) {
        self.samples.push(ts_us);
    }
}
";

/// Simulator crate: feeds the millisecond reading straight into the
/// microsecond sink. Nothing in this file spells both units, so only
/// the interprocedural pass can catch it.
const SIM_BAD: &str = "
pub fn record_beacon(meter: &mut Meter) {
    let stamp = last_beacon_ms();
    meter.push_us(stamp);
}
";

/// Clean twin: the boundary rescales, so the flow is consistent.
const SIM_GOOD: &str = "
pub fn record_beacon(meter: &mut Meter) {
    let stamp_us = last_beacon_ms() * 1_000;
    meter.push_us(stamp_us);
}
";

/// A return that launders a unit across the boundary: the `_us`
/// signature promises microseconds but the body hands back the
/// device crate's millisecond reading.
const SIM_BAD_RETURN: &str = "
pub fn next_wakeup_us() -> u64 {
    last_beacon_ms()
}
";

fn temp_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-dataflow-{name}"));
    for (rel, contents) in files {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, contents).expect("write");
    }
    dir
}

fn interproc_tokens(files: &[(&str, &str)], name: &str) -> Vec<String> {
    let dir = temp_tree(name, files);
    let analysis = analyze(&dir).expect("analyze");
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::UnitFlowInterproc)
        .map(|f| f.token.clone())
        .collect()
}

fn by_rule(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

const DEVICE_PATH: &str = "crates/ff-device/src/meter.rs";
const SIM_PATH: &str = "crates/ff-sim/src/schedule.rs";

#[test]
fn millisecond_return_into_microsecond_method_across_crates() {
    let tokens = interproc_tokens(&[(DEVICE_PATH, DEVICE), (SIM_PATH, SIM_BAD)], "cross-bad");
    assert_eq!(tokens, ["call:push_us"]);
}

#[test]
fn rescaled_boundary_is_clean_across_crates() {
    let tokens = interproc_tokens(&[(DEVICE_PATH, DEVICE), (SIM_PATH, SIM_GOOD)], "cross-good");
    assert_eq!(tokens, Vec::<String>::new());
}

#[test]
fn cross_crate_return_contradiction_is_flagged() {
    let tokens = interproc_tokens(
        &[(DEVICE_PATH, DEVICE), (SIM_PATH, SIM_BAD_RETURN)],
        "cross-ret",
    );
    assert_eq!(tokens, ["ret:next_wakeup_us"]);
}

#[test]
fn cross_crate_defect_is_invisible_to_the_intraprocedural_family() {
    // The old per-file pass keys on suffixes visible at the call site;
    // the laundered flow above has none, so it must stay silent and the
    // new family is the only detector. Guards the partition between the
    // two families: neither double-reports the other's ground.
    let dir = temp_tree(
        "cross-partition",
        &[(DEVICE_PATH, DEVICE), (SIM_PATH, SIM_BAD)],
    );
    let analysis = analyze(&dir).expect("analyze");
    assert_eq!(by_rule(&analysis.findings, Rule::UnitFlow), 0);
    assert_eq!(by_rule(&analysis.findings, Rule::UnitFlowInterproc), 1);
}
