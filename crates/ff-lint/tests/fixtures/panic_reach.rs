//! Known-bad panic-reachability fixture: `api_entry` is a pub API whose
//! helper unwraps, so the panic can escape the crate boundary. The
//! `clean_path` fn has no path to a panic site. Lint fixture, never
//! compiled.

pub fn api_entry(v: &[u8]) -> u8 {
    deep_helper(v)
}

fn deep_helper(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

pub fn clean_path(v: &[u8]) -> usize {
    v.len()
}
