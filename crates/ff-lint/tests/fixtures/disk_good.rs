//! Known-good DK23DA disk machine. This file is a lint fixture: it is
//! scanned by ff-lint in tests (placed at `crates/ff-device/src/disk.rs`
//! of a synthetic tree), never compiled.

pub enum DiskState {
    Idle,
    SpinningDown(SimTime),
    Standby,
    SpinningUp(SimTime),
}

impl DiskParams {
    pub fn hitachi_dk23da() -> Self {
        DiskParams {
            active_power: Watts(2.0),
            idle_power: Watts(1.6),
            standby_power: Watts(0.15),
            spinup_energy: Joules(5.0),
            spindown_energy: Joules(2.94),
            spinup_time: Dur::from_millis(1_600),
            spindown_time: Dur::from_millis(2_300),
            timeout: Dur::from_secs(20),
        }
    }
}

pub struct DiskModel {
    state: DiskState,
}

impl DiskModel {
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            state: DiskState::Idle,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        match self.state {
            DiskState::Idle => {
                let deadline = self.idle_since + self.params.timeout;
                self.meter.transition(self.params.spindown_energy);
                self.state = DiskState::SpinningDown(deadline);
            }
            DiskState::SpinningDown(until) => {
                self.state = DiskState::Standby;
            }
            DiskState::Standby => {
                self.clock = now;
            }
            DiskState::SpinningUp(until) => {
                self.state = DiskState::Idle;
            }
        }
    }

    fn service(&mut self, now: SimTime) {
        if self.state == DiskState::Standby {
            self.state = DiskState::SpinningUp(now);
        }
    }
}
