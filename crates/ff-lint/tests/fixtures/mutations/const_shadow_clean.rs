//! Clean twin of `const_shadow_mutant.rs`: the same value cited through
//! the registry. The provenance family must stay silent.

use crate::consts;

pub fn spindown_budget() -> Joules {
    Joules(consts::DISK_SPINDOWN_ENERGY_J)
}
