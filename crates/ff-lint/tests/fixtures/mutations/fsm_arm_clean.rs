//! Clean twin of `fsm_arm_mutant.rs`: the full Aironet 350 CAM/PSM
//! cycle with every arm present. The FSM family must stay silent on
//! this machine. Scanned by ff-lint in tests (placed at
//! `crates/ff-device/src/wnic.rs` of a synthetic tree), never compiled.

pub enum WnicState {
    Cam,
    ToPsm(SimTime),
    Psm,
    ToCam(SimTime),
}

impl WnicParams {
    pub fn cisco_aironet350() -> Self {
        WnicParams {
            psm_idle: Watts(0.39),
            cam_idle: Watts(1.41),
            psm_timeout: Dur::from_millis(800),
            bandwidth: BytesPerSec::from_mbit_per_sec(11.0),
        }
    }
}

pub struct WnicModel {
    state: WnicState,
}

impl WnicModel {
    pub fn new(params: WnicParams) -> Self {
        WnicModel {
            state: WnicState::Psm,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        match self.state {
            WnicState::Cam => {
                let deadline = self.idle_since + self.params.psm_timeout;
                self.meter.transition(self.params.to_psm_energy);
                self.state = WnicState::ToPsm(deadline);
            }
            WnicState::ToPsm(until) => {
                self.state = WnicState::Psm;
            }
            WnicState::Psm => {
                self.clock = now;
            }
            WnicState::ToCam(until) => {
                self.state = WnicState::Cam;
            }
        }
    }

    fn service(&mut self, now: SimTime) {
        if self.state == WnicState::Psm {
            self.state = WnicState::ToCam(now);
        }
    }
}
