//! Bench summary export — clean twin of `taint_mutant.rs`. The digest
//! helper drains the map into a vector and sorts it before folding, so
//! the value reaching the `SimReport` sink is replay-stable.

pub struct SimReport {
    pub lines: Vec<String>,
}

fn digest() -> u64 {
    let mut cells: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    cells.insert(String::from("grep"), 7);
    let mut pairs: Vec<(String, u64)> = cells.drain().collect();
    pairs.sort();
    let mut acc = 0;
    for (_, v) in pairs {
        acc = acc.rotate_left(7) ^ v;
    }
    acc
}

pub fn render() -> SimReport {
    let mut report = SimReport { lines: Vec::new() };
    report.lines.push(format!("{}", digest()));
    report
}
