//! Mutation fixture (unit-flow-interproc): a millisecond quantity
//! produced behind a call boundary is handed to a microsecond parameter
//! unchanged. No identifier at the call site spells a unit, so the
//! intra-procedural pass cannot see it — only the interprocedural
//! summaries can. Scanned by ff-lint in tests (placed at
//! `crates/ff-policy/src/prefetch_window.rs` of a synthetic tree),
//! never compiled.

pub fn beacon_gap_ms() -> u64 {
    100
}

pub fn arm_timer_us(deadline_us: u64) -> u64 {
    deadline_us
}

pub fn schedule_wakeup() -> u64 {
    let wake = beacon_gap_ms();
    arm_timer_us(wake)
}
