//! Bench summary export — mutant twin. This file is a lint fixture
//! (placed at `crates/ff-bench/src/export.rs` of a synthetic tree),
//! never compiled. The defect: the digest helper folds a `HashMap` in
//! arbitrary iteration order and its result is laundered through a
//! plain call into the `SimReport` sink, which the per-line determinism
//! grep cannot see — only the interprocedural taint pass connects them.

pub struct SimReport {
    pub lines: Vec<String>,
}

fn digest() -> u64 {
    let mut cells: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    cells.insert(String::from("grep"), 7);
    let mut acc = 0;
    for (_, v) in cells.iter() {
        acc = acc.rotate_left(7) ^ v;
    }
    acc
}

pub fn render() -> SimReport {
    let mut report = SimReport { lines: Vec::new() };
    report.lines.push(format!("{}", digest()));
    report
}
