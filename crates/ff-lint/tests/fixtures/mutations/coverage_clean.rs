//! Clean twin of `coverage_mutant.rs`: both transitions are metered
//! where they commit, so the event-coverage family must stay silent.

pub enum GateState {
    Open,
    Shut,
}

pub struct Gate {
    state: GateState,
}

impl Gate {
    pub fn new() -> Self {
        Gate {
            state: GateState::Open,
        }
    }

    fn advance(&mut self, elapsed: Dur) {
        match self.state {
            GateState::Open => {
                self.meter.transition("gate_shut", self.params.shut_energy);
                self.state = GateState::Shut;
            }
            GateState::Shut => {
                self.meter.dwell("shut", self.params.shut_power, elapsed);
                self.state = GateState::Open;
            }
        }
    }
}
