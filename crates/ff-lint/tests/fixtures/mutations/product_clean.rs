//! Server-path failover machine — clean twin of `product_mutant.rs`.
//! Here `MarkedDead` transitions straight back to `Healthy` once the
//! path probe succeeds, satisfying the product checker's obligation
//! that every degraded state recovers.

pub enum ServerPathState {
    Healthy,
    Down(SimTime),
    MarkedDead(SimTime),
}

pub struct PathTracker {
    state: ServerPathState,
}

impl PathTracker {
    pub fn new() -> Self {
        PathTracker {
            state: ServerPathState::Healthy,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        match self.state {
            ServerPathState::Healthy => {
                self.meter.transition(self.outage_cost);
                self.state = ServerPathState::Down(now);
            }
            ServerPathState::Down(since) => {
                if self.ladder_exhausted(now, since) {
                    self.meter.transition(self.failover_cost);
                    self.state = ServerPathState::MarkedDead(now);
                } else {
                    self.meter.transition(self.recovery_cost);
                    self.state = ServerPathState::Healthy;
                }
            }
            ServerPathState::MarkedDead(since) => {
                self.meter.transition(self.recovery_cost);
                self.state = ServerPathState::Healthy;
            }
        }
    }
}
