//! Server-path failover machine — mutant twin. This file is a lint
//! fixture (placed at `crates/ff-policy/src/failover.rs` of a synthetic
//! tree), never compiled. The defect: `MarkedDead` detours through a
//! `Drained` state and back, so the degraded state can never recover to
//! `Healthy` — every plain FSM property (reachability, exhaustiveness,
//! liveness) still holds, and only the product checker's temporal
//! recovery obligation catches it.

pub enum ServerPathState {
    Healthy,
    Down(SimTime),
    MarkedDead(SimTime),
    Drained,
}

pub struct PathTracker {
    state: ServerPathState,
}

impl PathTracker {
    pub fn new() -> Self {
        PathTracker {
            state: ServerPathState::Healthy,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        match self.state {
            ServerPathState::Healthy => {
                self.meter.transition(self.outage_cost);
                self.state = ServerPathState::Down(now);
            }
            ServerPathState::Down(since) => {
                if self.ladder_exhausted(now, since) {
                    self.meter.transition(self.failover_cost);
                    self.state = ServerPathState::MarkedDead(now);
                } else {
                    self.meter.transition(self.recovery_cost);
                    self.state = ServerPathState::Healthy;
                }
            }
            ServerPathState::MarkedDead(since) => {
                self.meter.transition(self.drain_cost);
                self.state = ServerPathState::Drained;
            }
            ServerPathState::Drained => {
                self.meter.transition(self.requeue_cost);
                self.state = ServerPathState::MarkedDead(now);
            }
        }
    }
}
