//! Clean twin of `unit_flow_mutant.rs`: the millisecond value is
//! rescaled explicitly at the boundary, so the dimension flow is
//! consistent and every unit family must stay silent.

pub fn beacon_gap_ms() -> u64 {
    100
}

pub fn arm_timer_us(deadline_us: u64) -> u64 {
    deadline_us
}

pub fn schedule_wakeup() -> u64 {
    let wake_us = beacon_gap_ms() * 1_000;
    arm_timer_us(wake_us)
}
