//! Mutation fixture (const-provenance): the DK23DA spin-down energy
//! appears as a bare literal instead of citing `ff-device::consts`. The
//! provenance family must name the shadowed constant. Scanned by
//! ff-lint in tests (placed at
//! `crates/ff-device/src/spindown_table.rs` of a synthetic tree that
//! also carries the real registry), never compiled.

pub fn spindown_budget() -> Joules {
    Joules(2.94)
}
