//! Mutation fixture (fsm): the ToCam arm has been deleted from the
//! CAM/PSM machine, so the wake-up path never completes. The FSM family
//! must report the hole (non-exhaustive match, deadlocked ToCam,
//! unreachable Cam). Scanned by ff-lint in tests (placed at
//! `crates/ff-device/src/wnic.rs` of a synthetic tree), never compiled.

pub enum WnicState {
    Cam,
    ToPsm(SimTime),
    Psm,
    ToCam(SimTime),
}

impl WnicParams {
    pub fn cisco_aironet350() -> Self {
        WnicParams {
            psm_idle: Watts(0.39),
            cam_idle: Watts(1.41),
            psm_timeout: Dur::from_millis(800),
            bandwidth: BytesPerSec::from_mbit_per_sec(11.0),
        }
    }
}

pub struct WnicModel {
    state: WnicState,
}

impl WnicModel {
    pub fn new(params: WnicParams) -> Self {
        WnicModel {
            state: WnicState::Psm,
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        match self.state {
            WnicState::Cam => {
                let deadline = self.idle_since + self.params.psm_timeout;
                self.meter.transition(self.params.to_psm_energy);
                self.state = WnicState::ToPsm(deadline);
            }
            WnicState::ToPsm(until) => {
                self.state = WnicState::Psm;
            }
            WnicState::Psm => {
                self.clock = now;
            }
        }
    }

    fn service(&mut self, now: SimTime) {
        if self.state == WnicState::Psm {
            self.state = WnicState::ToCam(now);
        }
    }
}
