//! Mutation fixture (event-coverage): the Open -> Shut transition
//! commits a state change with no meter call anywhere near it, so the
//! change is invisible to the observability layer. Scanned by ff-lint
//! in tests (placed at `crates/ff-device/src/gate.rs` of a synthetic
//! tree), never compiled.

pub enum GateState {
    Open,
    Shut,
}

pub struct Gate {
    state: GateState,
}

impl Gate {
    pub fn new() -> Self {
        Gate {
            state: GateState::Open,
        }
    }

    fn advance(&mut self, elapsed: Dur) {
        match self.state {
            GateState::Open => {
                self.state = GateState::Shut;
            }
            GateState::Shut => {
                self.meter.dwell("shut", self.params.shut_power, elapsed);
                self.state = GateState::Open;
            }
        }
    }
}
