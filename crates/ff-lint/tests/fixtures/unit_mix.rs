//! Known-bad unit-flow fixture: a seconds-denominated value is added to
//! a microseconds-denominated one and also passed to a callee whose
//! parameter is microseconds-denominated. Lint fixture, never compiled.

pub fn caller(deadline_s: u64) -> u64 {
    let window_us = 1_500;
    record_sample(deadline_s, 4);
    window_us + deadline_s
}

pub fn record_sample(ts_us: u64, weight: u64) -> u64 {
    ts_us + weight
}
