//! Mutation-style self-test of the semantic rule families.
//!
//! Each fixture under `tests/fixtures/mutations/` is a deliberately
//! broken snippet paired with a clean twin: a millisecond value crossing
//! a microsecond call boundary, a Table 1 constant shadowed by a bare
//! literal, a state change committed without a meter call, and an FSM
//! with a deleted arm. The harness copies each pair into a synthetic
//! workspace tree and asserts that the intended rule family fires on
//! the mutant — with the exact token the docs promise — and stays
//! silent on the twin. This is the regression net that keeps the
//! analyses from rotting into always-green: if a detector stops seeing
//! its defect class, the mutant test fails.

use ff_lint::{analyze, Rule};
use std::path::PathBuf;

const UNIT_FLOW_MUTANT: &str = include_str!("fixtures/mutations/unit_flow_mutant.rs");
const UNIT_FLOW_CLEAN: &str = include_str!("fixtures/mutations/unit_flow_clean.rs");
const CONST_SHADOW_MUTANT: &str = include_str!("fixtures/mutations/const_shadow_mutant.rs");
const CONST_SHADOW_CLEAN: &str = include_str!("fixtures/mutations/const_shadow_clean.rs");
const COVERAGE_MUTANT: &str = include_str!("fixtures/mutations/coverage_mutant.rs");
const COVERAGE_CLEAN: &str = include_str!("fixtures/mutations/coverage_clean.rs");
const FSM_ARM_MUTANT: &str = include_str!("fixtures/mutations/fsm_arm_mutant.rs");
const FSM_ARM_CLEAN: &str = include_str!("fixtures/mutations/fsm_arm_clean.rs");
const PRODUCT_MUTANT: &str = include_str!("fixtures/mutations/product_mutant.rs");
const PRODUCT_CLEAN: &str = include_str!("fixtures/mutations/product_clean.rs");
const TAINT_MUTANT: &str = include_str!("fixtures/mutations/taint_mutant.rs");
const TAINT_CLEAN: &str = include_str!("fixtures/mutations/taint_clean.rs");
const CONFORMANCE_MUTANT: &str = include_str!("fixtures/mutations/conformance_mutant.jsonl");
const CONFORMANCE_CLEAN: &str = include_str!("fixtures/mutations/conformance_clean.jsonl");

/// The real constant registry, copied into trees that carry ff-device
/// sources so the provenance family's registry-drift gate sees the
/// canonical file and only the planted defect can fire.
const REGISTRY: &str = include_str!("../../ff-device/src/consts.rs");
const REGISTRY_PATH: &str = "crates/ff-device/src/consts.rs";

const DISK_GOOD: &str = include_str!("fixtures/disk_good.rs");

fn temp_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-mutations-{name}"));
    for (rel, contents) in files {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, contents).expect("write");
    }
    dir
}

fn tokens(dir: &PathBuf, rule: Rule) -> Vec<String> {
    let analysis = analyze(dir).expect("analyze");
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.token.clone())
        .collect()
}

/// The semantic families with mutation twins; the per-pair tests
/// assert that a mutant trips its own family and none of the others.
const SEMANTIC: [Rule; 6] = [
    Rule::UnitFlowInterproc,
    Rule::ConstProvenance,
    Rule::EventCoverage,
    Rule::ProductFsm,
    Rule::NondetTaint,
    Rule::TraceConformance,
];

fn assert_only(dir: &PathBuf, fired: Rule, expected: &[&str]) {
    for rule in SEMANTIC {
        let got = tokens(dir, rule);
        if rule == fired {
            assert_eq!(got, expected, "{} tokens", rule.as_str());
        } else {
            assert!(
                got.is_empty(),
                "{} should be silent: {got:?}",
                rule.as_str()
            );
        }
    }
}

fn assert_semantic_silent(dir: &PathBuf) {
    for rule in SEMANTIC {
        let got = tokens(dir, rule);
        assert!(
            got.is_empty(),
            "{} should be silent: {got:?}",
            rule.as_str()
        );
    }
}

#[test]
fn unit_flow_interproc_fires_on_its_mutant_only() {
    let path = "crates/ff-policy/src/prefetch_window.rs";
    let mutant = temp_tree("unit-mutant", &[(path, UNIT_FLOW_MUTANT)]);
    assert_only(&mutant, Rule::UnitFlowInterproc, &["call:arm_timer_us"]);

    let clean = temp_tree("unit-clean", &[(path, UNIT_FLOW_CLEAN)]);
    assert_semantic_silent(&clean);
}

#[test]
fn const_provenance_fires_on_its_mutant_only() {
    let path = "crates/ff-device/src/spindown_table.rs";
    let mutant = temp_tree(
        "const-mutant",
        &[(REGISTRY_PATH, REGISTRY), (path, CONST_SHADOW_MUTANT)],
    );
    assert_only(
        &mutant,
        Rule::ConstProvenance,
        &["shadow:DISK_SPINDOWN_ENERGY_J"],
    );

    let clean = temp_tree(
        "const-clean",
        &[(REGISTRY_PATH, REGISTRY), (path, CONST_SHADOW_CLEAN)],
    );
    assert_semantic_silent(&clean);
}

#[test]
fn event_coverage_fires_on_its_mutant_only() {
    let path = "crates/ff-device/src/gate.rs";
    let mutant = temp_tree(
        "coverage-mutant",
        &[(REGISTRY_PATH, REGISTRY), (path, COVERAGE_MUTANT)],
    );
    assert_only(
        &mutant,
        Rule::EventCoverage,
        &["unrecorded:GateState::Open->Shut"],
    );

    let clean = temp_tree(
        "coverage-clean",
        &[(REGISTRY_PATH, REGISTRY), (path, COVERAGE_CLEAN)],
    );
    assert_semantic_silent(&clean);
}

#[test]
fn product_fsm_fires_on_its_mutant_only() {
    // The mutant machine passes every single-machine FSM property —
    // all states reachable, no deadlock, exhaustive match — but its
    // MarkedDead state cycles through Drained forever instead of
    // recovering, which only the product checker's temporal recovery
    // obligation sees.
    let path = "crates/ff-policy/src/failover.rs";
    let mutant = temp_tree("product-mutant", &[(path, PRODUCT_MUTANT)]);
    assert_only(
        &mutant,
        Rule::ProductFsm,
        &["no-recovery:ServerPathState::MarkedDead"],
    );

    let clean = temp_tree("product-clean", &[(path, PRODUCT_CLEAN)]);
    assert_semantic_silent(&clean);
}

#[test]
fn nondet_taint_fires_on_its_mutant_only() {
    let path = "crates/ff-bench/src/export.rs";
    let mutant = temp_tree("taint-mutant", &[(path, TAINT_MUTANT)]);
    assert_only(&mutant, Rule::NondetTaint, &["render<-hash-iteration"]);

    let clean = temp_tree("taint-clean", &[(path, TAINT_CLEAN)]);
    assert_semantic_silent(&clean);
}

#[test]
fn trace_conformance_fires_on_its_mutant_only() {
    // Both trees carry the clean server-path machine; only the traces
    // differ. The mutant trace jumps Healthy -> MarkedDead directly,
    // skipping the observable Down state the recorder would have
    // emitted — a static<->dynamic divergence.
    let machine = "crates/ff-policy/src/failover.rs";
    let mutant = temp_tree(
        "conformance-mutant",
        &[
            (machine, PRODUCT_CLEAN),
            ("bench/trace.jsonl", CONFORMANCE_MUTANT),
        ],
    );
    assert_only(
        &mutant,
        Rule::TraceConformance,
        &["runtime-only:server:Healthy->MarkedDead"],
    );

    let clean = temp_tree(
        "conformance-clean",
        &[
            (machine, PRODUCT_CLEAN),
            ("bench/trace.jsonl", CONFORMANCE_CLEAN),
        ],
    );
    assert_semantic_silent(&clean);
}

#[test]
fn fsm_fires_on_its_mutant_only() {
    // The FSM family needs both canonical machines present, so the wnic
    // pair rides alongside the known-good disk fixture. The synthetic
    // device sources carry their parameter tables as literals, which
    // trips other families by design — here only the FSM verdict is
    // under test, so the assertions are per-family.
    let mutant = temp_tree(
        "fsm-mutant",
        &[
            ("crates/ff-device/src/disk.rs", DISK_GOOD),
            ("crates/ff-device/src/wnic.rs", FSM_ARM_MUTANT),
        ],
    );
    let got = tokens(&mutant, Rule::Fsm);
    for want in [
        "nonexhaustive:WnicState",
        "deadlock:WnicState::ToCam",
        "unreachable:WnicState::Cam",
    ] {
        assert!(got.iter().any(|t| t == want), "missing {want} in {got:?}");
    }

    let clean = temp_tree(
        "fsm-clean",
        &[
            ("crates/ff-device/src/disk.rs", DISK_GOOD),
            ("crates/ff-device/src/wnic.rs", FSM_ARM_CLEAN),
        ],
    );
    assert_eq!(tokens(&clean, Rule::Fsm), Vec::<String>::new());
}
