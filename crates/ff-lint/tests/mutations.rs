//! Mutation self-test of every rule family, driven by the automated
//! engine in [`ff_lint::mutgen`].
//!
//! Earlier revisions kept handcrafted mutant/clean fixture pairs under
//! `tests/fixtures/mutations/`. Those twins rotted whenever a detector
//! changed shape and covered only six families. The engine replaces
//! them: deterministic, seed-derived mutants (operator flips, constant
//! perturbations, guard removals, transition drops) are applied to the
//! real workspace sources *in memory*, all eighteen families re-run per
//! mutant, and a mutant counts as killed only when every family it was
//! aimed at reports a finding beyond the committed baseline.
//!
//! The tests here are the regression net that keeps the analyses from
//! rotting into always-green: if a detector stops seeing its defect
//! class, its probe survives and the kill-rate floor fails the build.

use ff_lint::mutgen::{self, KillMatrix};
use ff_lint::Rule;
use std::path::PathBuf;

fn root() -> PathBuf {
    ff_lint::default_root()
}

fn run() -> KillMatrix {
    mutgen::run(&root(), mutgen::DEFAULT_SEED).expect("mutation engine")
}

#[test]
fn every_probe_is_killed() {
    let matrix = run();
    let survivors: Vec<&str> = matrix
        .mutants
        .iter()
        .filter(|m| !m.killed)
        .map(|m| m.id.as_str())
        .collect();
    assert!(
        survivors.is_empty(),
        "surviving mutants (detector regressed): {survivors:?}"
    );
}

#[test]
fn every_family_has_a_probe_and_meets_its_floor() {
    let matrix = run();
    assert_eq!(matrix.families.len(), Rule::all().len());
    for fam in &matrix.families {
        assert!(
            fam.probes > 0,
            "{}: no probe aims at this family",
            fam.rule.as_str()
        );
        assert!(
            fam.rate() >= fam.floor,
            "{}: kill rate {:.2} below floor {:.2}",
            fam.rule.as_str(),
            fam.rate(),
            fam.floor
        );
    }
    assert!(matrix.floor_violations().is_empty());
}

/// The three wave-4 families must be killed at exactly 100 % — they are
/// new and carry no grandfathered debt.
#[test]
fn wave4_families_kill_all_their_probes() {
    let matrix = run();
    for rule in [Rule::ArithSafety, Rule::EnergyBounds, Rule::TimeoutOrder] {
        let fam = matrix
            .families
            .iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("{} missing from matrix", rule.as_str()));
        assert_eq!(
            fam.kills,
            fam.probes,
            "{}: {}/{} probes killed",
            rule.as_str(),
            fam.kills,
            fam.probes
        );
        assert!(fam.probes > 0);
    }
}

/// Same seed ⇒ byte-identical mutant set and kill matrix. The engine is
/// part of the deterministic surface: CI regenerates the matrix and
/// diffs it against the committed artifact.
#[test]
fn engine_is_deterministic_for_a_seed() {
    let a = run().to_json();
    let b = run().to_json();
    assert_eq!(a, b, "same seed produced different kill matrices");
}

/// The committed artifact in `results/lint-killscore.json` must match
/// what the engine produces at the default seed, so the checked-in
/// matrix can never drift from the code.
#[test]
fn committed_matrix_matches_a_fresh_run() {
    let path = root().join("results/lint-killscore.json");
    let committed =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let fresh = run().to_json();
    assert_eq!(
        committed.trim_end(),
        fresh.trim_end(),
        "results/lint-killscore.json is stale — regenerate with \
         `cargo run -p ff-lint -- --killscore results/lint-killscore.json`"
    );
}

/// A different seed may pick different occurrences for `Auto` probes
/// but must still produce a well-formed, fully-killed matrix.
#[test]
fn alternate_seed_still_kills_everything() {
    let matrix = mutgen::run(&root(), 0xDEAD_BEEF).expect("mutation engine");
    assert_eq!(matrix.seed, 0xDEAD_BEEF);
    assert!(
        matrix.mutants.iter().all(|m| m.killed),
        "alternate-seed survivors: {:?}",
        matrix
            .mutants
            .iter()
            .filter(|m| !m.killed)
            .map(|m| m.id.as_str())
            .collect::<Vec<_>>()
    );
}
