//! Semantic-layer integration tests: the fixtures under `tests/fixtures/`
//! are copied into synthetic workspace-shaped trees and analysed through
//! the library API, with golden assertions on the findings and on the
//! `"fsm"` section of the JSON report.
//!
//! The fixtures are plain `.rs` text that is scanned, never compiled, so
//! each one can focus on a single defect without carrying a full crate.

use ff_lint::{analyze, fsm::FsmTable, run, Baseline, Finding, Rule};
use std::path::PathBuf;

const DISK_GOOD: &str = include_str!("fixtures/disk_good.rs");
const WNIC_GOOD: &str = include_str!("fixtures/wnic_good.rs");
const WNIC_MISSING_ARM: &str = include_str!("fixtures/wnic_missing_arm.rs");
const PANIC_REACH: &str = include_str!("fixtures/panic_reach.rs");
const UNIT_MIX: &str = include_str!("fixtures/unit_mix.rs");

fn temp_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-semantic-{name}"));
    for (rel, contents) in files {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, contents).expect("write");
    }
    dir
}

fn findings_for(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn tokens_for(findings: &[Finding], rule: Rule) -> Vec<&str> {
    findings_for(findings, rule)
        .iter()
        .map(|f| f.token.as_str())
        .collect()
}

fn pairs(table: &FsmTable) -> Vec<(&str, &str)> {
    table
        .transitions
        .iter()
        .map(|t| (t.from.as_str(), t.to.as_str()))
        .collect()
}

#[test]
fn good_machines_extract_clean_tables() {
    let dir = temp_tree(
        "good",
        &[
            ("crates/ff-device/src/disk.rs", DISK_GOOD),
            ("crates/ff-device/src/wnic.rs", WNIC_GOOD),
        ],
    );
    let analysis = analyze(&dir).expect("analyze");

    assert_eq!(
        tokens_for(&analysis.findings, Rule::Fsm),
        Vec::<&str>::new(),
        "the known-good machines must model-check clean"
    );
    assert_eq!(
        tokens_for(&analysis.findings, Rule::ModelInvariants),
        Vec::<&str>::new(),
        "the fixture parameter tables must match the pinned constants"
    );

    let [disk, wnic] = &analysis.fsm_tables[..] else {
        panic!("expected exactly two tables, got {:?}", analysis.fsm_tables);
    };

    assert_eq!(disk.enum_name, "DiskState");
    assert_eq!(disk.file, "crates/ff-device/src/disk.rs");
    assert_eq!(
        disk.states,
        ["Idle", "SpinningDown", "Standby", "SpinningUp"]
    );
    assert_eq!(disk.initial, ["Idle"]);
    assert_eq!(
        pairs(disk),
        [
            ("Idle", "SpinningDown"),
            ("SpinningDown", "Standby"),
            ("SpinningUp", "Idle"),
            ("Standby", "SpinningUp"),
        ]
    );

    assert_eq!(wnic.enum_name, "WnicState");
    assert_eq!(wnic.file, "crates/ff-device/src/wnic.rs");
    assert_eq!(wnic.states, ["Cam", "ToPsm", "Psm", "ToCam"]);
    assert_eq!(wnic.initial, ["Psm"]);
    assert_eq!(
        pairs(wnic),
        [
            ("Cam", "ToPsm"),
            ("ToPsm", "Psm"),
            ("ToCam", "Cam"),
            ("Psm", "ToCam"),
        ]
    );
}

#[test]
fn good_tree_reports_golden_fsm_json() {
    let dir = temp_tree(
        "good-json",
        &[
            ("crates/ff-device/src/disk.rs", DISK_GOOD),
            ("crates/ff-device/src/wnic.rs", WNIC_GOOD),
        ],
    );
    let report = run(&dir, &Baseline::empty()).expect("run");
    let doc = ff_base::json::Value::parse(&report.to_json()).expect("valid json");
    let tables = doc
        .get("fsm")
        .and_then(|v| v.as_array())
        .expect("fsm array");
    assert_eq!(tables.len(), 2);

    let golden = [
        (
            "crates/ff-device/src/disk.rs",
            "DiskState",
            vec![
                ("Idle", "SpinningDown"),
                ("SpinningDown", "Standby"),
                ("SpinningUp", "Idle"),
                ("Standby", "SpinningUp"),
            ],
        ),
        (
            "crates/ff-device/src/wnic.rs",
            "WnicState",
            vec![
                ("Cam", "ToPsm"),
                ("ToPsm", "Psm"),
                ("ToCam", "Cam"),
                ("Psm", "ToCam"),
            ],
        ),
    ];
    for (table, (file, enum_name, transitions)) in tables.iter().zip(&golden) {
        assert_eq!(table.get("file").and_then(|v| v.as_str()), Some(*file));
        assert_eq!(table.get("enum").and_then(|v| v.as_str()), Some(*enum_name));
        let got: Vec<(&str, &str)> = table
            .get("transitions")
            .and_then(|v| v.as_array())
            .expect("transitions array")
            .iter()
            .map(|t| {
                (
                    t.get("from").and_then(|v| v.as_str()).expect("from"),
                    t.get("to").and_then(|v| v.as_str()).expect("to"),
                )
            })
            .collect();
        assert_eq!(&got, transitions, "{enum_name}");
    }
}

#[test]
fn removed_transition_arm_is_caught() {
    let dir = temp_tree(
        "missing-arm",
        &[("crates/ff-device/src/wnic.rs", WNIC_MISSING_ARM)],
    );
    let analysis = analyze(&dir).expect("analyze");
    let tokens = tokens_for(&analysis.findings, Rule::Fsm);

    // Deleting the `ToCam` arm must surface the full causal chain: the
    // match is no longer exhaustive, `ToCam` has no way out, `Cam` can
    // no longer be reached from the initial state, and the pinned
    // ToCam -> Cam switch-completion edge is gone.
    for expected in [
        "nonexhaustive:WnicState",
        "deadlock:WnicState::ToCam",
        "unreachable:WnicState::Cam",
        "missing-transition:ToCam->Cam",
        // The synthetic tree has no disk.rs at all, which the checker
        // must report rather than silently skip.
        "fsm-missing:DiskState",
    ] {
        assert!(tokens.contains(&expected), "missing {expected}: {tokens:?}");
    }
}

#[test]
fn panic_reaching_pub_fn_is_reported() {
    let dir = temp_tree("panic-reach", &[("crates/ff-sim/src/lib.rs", PANIC_REACH)]);
    let analysis = analyze(&dir).expect("analyze");
    let reach = findings_for(&analysis.findings, Rule::PanicReach);

    assert_eq!(
        reach.iter().map(|f| f.token.as_str()).collect::<Vec<_>>(),
        ["api_entry"],
        "only the pub fn whose helper unwraps is panic-reaching"
    );
    assert!(
        reach[0].message.contains("deep_helper"),
        "the report must name the path to the panic site: {}",
        reach[0].message
    );
}

#[test]
fn mixed_unit_call_and_addition_are_reported() {
    let dir = temp_tree("unit-mix", &[("crates/ff-sim/src/lib.rs", UNIT_MIX)]);
    let analysis = analyze(&dir).expect("analyze");
    let mut tokens = tokens_for(&analysis.findings, Rule::UnitFlow);
    tokens.sort_unstable();

    assert_eq!(
        tokens,
        ["call:record_sample", "us+s"],
        "both the mixed addition and the mixed-unit call site must be flagged"
    );
}
