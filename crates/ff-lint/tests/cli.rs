//! End-to-end tests of the `ff-lint` binary (exit codes, flags, output
//! formats), driven against both the real workspace and synthetic trees.

use std::path::PathBuf;
use std::process::Command;

fn ff_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ff-lint"))
}

fn temp_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-lint-cli-{name}"));
    for (rel, contents) in files {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, contents).expect("write");
    }
    dir
}

#[test]
fn workspace_is_clean_with_committed_baseline() {
    let out = ff_lint().output().expect("spawn");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("— OK"), "missing OK marker: {text}");
}

#[test]
fn json_flag_emits_parseable_json() {
    let out = ff_lint().arg("--json").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = ff_base::json::Value::parse(&text).expect("stdout is JSON");
    assert_eq!(
        doc.get("summary").and_then(|s| s.get("clean")),
        Some(&ff_base::json::Value::Bool(true))
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    // The report is consumed by CI artifacts and diffed between runs,
    // so it must be a pure function of the tree: no timestamps, no
    // hash-map ordering, no absolute paths.
    let first = ff_lint().arg("--json").output().expect("spawn");
    let second = ff_lint().arg("--json").output().expect("spawn");
    assert!(first.status.success() && second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "JSON report is not deterministic"
    );
}

#[test]
fn families_flag_lists_all_eighteen_rule_ids() {
    let out = ff_lint().arg("--families").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let families: Vec<&str> = text.lines().collect();
    assert_eq!(families.len(), 18, "families: {families:?}");
    for id in [
        "unit-flow-interproc",
        "const-provenance",
        "event-coverage",
        "arith-safety",
        "energy-bounds",
        "timeout-order",
    ] {
        assert!(families.contains(&id), "missing {id} in {families:?}");
    }
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = ff_lint().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--update-baseline"));
}

#[test]
fn unknown_flag_exits_two() {
    let out = ff_lint().arg("--bogus").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn violation_without_baseline_exits_one() {
    let dir = temp_tree(
        "violation",
        &[(
            "crates/ff-sim/src/lib.rs",
            "pub fn t() { let _ = std::time::Instant::now(); }\n",
        )],
    );
    let out = ff_lint()
        .args(["--root", dir.to_str().expect("utf-8"), "--baseline"])
        .arg(dir.join("absent.json"))
        .output()
        .expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Instant"));
}

#[test]
fn update_baseline_then_rerun_is_clean() {
    let dir = temp_tree(
        "ratchet",
        &[(
            "crates/ff-sim/src/lib.rs",
            "pub fn f(v: &[u8]) -> u8 { v[0] }\n",
        )],
    );
    // Seed some accepted debt…
    std::fs::write(
        dir.join("crates/ff-sim/src/debt.rs"),
        "pub fn g(v: Option<u8>) -> u8 { v.unwrap() }\n",
    )
    .expect("write debt");
    let baseline = dir.join("baseline.json");
    let root = dir.to_str().expect("utf-8");
    let up = ff_lint()
        .args(["--root", root, "--update-baseline", "--baseline"])
        .arg(&baseline)
        .output()
        .expect("spawn");
    assert!(
        up.status.success(),
        "{}",
        String::from_utf8_lossy(&up.stderr)
    );
    // …now the same tree is clean…
    let ok = ff_lint()
        .args(["--root", root, "--baseline"])
        .arg(&baseline)
        .output()
        .expect("spawn");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );
    // …until the debt grows by one more occurrence.
    std::fs::write(
        dir.join("crates/ff-sim/src/debt.rs"),
        "pub fn g(v: Option<u8>) -> u8 { v.unwrap() }\n\
         pub fn h(v: Option<u8>) -> u8 { v.unwrap() }\n",
    )
    .expect("grow debt");
    let bad = ff_lint()
        .args(["--root", root, "--baseline"])
        .arg(&baseline)
        .output()
        .expect("spawn");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&bad.stdout)
    );
}

#[test]
fn malformed_baseline_exits_two() {
    let dir = temp_tree(
        "badbase",
        &[
            ("crates/ff-sim/src/lib.rs", "pub fn ok() {}\n"),
            ("baseline.json", "{ not json"),
        ],
    );
    let out = ff_lint()
        .args(["--root", dir.to_str().expect("utf-8"), "--baseline"])
        .arg(dir.join("baseline.json"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
