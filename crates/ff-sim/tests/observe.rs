//! Integration tests for the observability layer: golden event trace,
//! recorder-neutrality, and counters-vs-events consistency.

use ff_policy::PolicyKind;
use ff_profile::Profiler;
use ff_sim::record::{Event, EventLog, NullRecorder};
use ff_sim::{SimConfig, SimReport, Simulation};
use ff_trace::{Grep, Make, Trace, Workload};

/// The short, fixed workload behind the golden trace: a small grep run
/// (seed 42) under FlexFetch primed with a profile from a different
/// execution (seed 43) — the §2.2 prior-run assumption.
fn golden_trace() -> Trace {
    Grep {
        files: 30,
        total_bytes: 2_000_000,
        ..Default::default()
    }
    .build(42)
}

fn golden_policy() -> PolicyKind {
    let prior = Grep {
        files: 30,
        total_bytes: 2_000_000,
        ..Default::default()
    }
    .build(43);
    PolicyKind::flexfetch(Profiler::standard().profile(&prior))
}

fn run_logged(trace: &Trace, kind: PolicyKind) -> (SimReport, EventLog) {
    let mut log = EventLog::new();
    let report = Simulation::new(SimConfig::default(), trace)
        .policy(kind)
        .run_recorded(&mut log)
        .expect("valid trace");
    (report, log)
}

/// Regenerate with:
/// `FF_BLESS=1 cargo test -p ff-sim --test observe golden_jsonl`
#[test]
fn golden_jsonl_is_stable() {
    let trace = golden_trace();
    let (_, log) = run_logged(&trace, golden_policy());
    let jsonl = log.to_jsonl();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/grep_flexfetch_seed42.jsonl"
    );
    if std::env::var_os("FF_BLESS").is_some() {
        std::fs::write(path, &jsonl).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file committed");
    assert_eq!(
        jsonl, golden,
        "event stream drifted from the golden trace; if intentional, \
         regenerate with FF_BLESS=1 and review the diff"
    );
}

fn assert_reports_equal(a: &SimReport, b: &SimReport) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.disk_energy, b.disk_energy);
    assert_eq!(a.wnic_energy, b.wnic_energy);
    assert_eq!(a.flash_energy, b.flash_energy);
    assert_eq!(a.app_requests, b.app_requests);
    assert_eq!(a.disk_requests, b.disk_requests);
    assert_eq!(a.wnic_requests, b.wnic_requests);
    assert_eq!(a.disk_bytes, b.disk_bytes);
    assert_eq!(a.wnic_bytes, b.wnic_bytes);
    assert_eq!(a.flash_requests, b.flash_requests);
    assert_eq!(a.flash_bytes, b.flash_bytes);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.cache_misses, b.cache_misses);
    assert_eq!(a.cache_stats, b.cache_stats);
    assert_eq!(a.stages, b.stages);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.stage_summaries, b.stage_summaries);
    assert_eq!(a.recorded_profile.is_some(), b.recorded_profile.is_some());
}

/// Recorders observe, they do not steer: a NullRecorder run and a
/// full EventLog run must both produce the exact report of a plain
/// `run()`.
#[test]
fn recorders_leave_the_report_unchanged() {
    let trace = golden_trace();
    let plain = Simulation::new(SimConfig::default(), &trace)
        .policy(golden_policy())
        .run()
        .expect("valid trace");
    let mut null = NullRecorder;
    let nulled = Simulation::new(SimConfig::default(), &trace)
        .policy(golden_policy())
        .run_recorded(&mut null)
        .expect("valid trace");
    assert_reports_equal(&plain, &nulled);
    let (logged, log) = run_logged(&trace, golden_policy());
    assert_reports_equal(&plain, &logged);
    assert!(!log.is_empty(), "the full recorder must see events");
}

/// Every aggregate the report carries must equal what the event stream
/// implies — on a read-write workload so write-back flushes appear.
#[test]
fn counters_match_events() {
    let trace = Make {
        units: 15,
        headers: 30,
        misc: 2,
        input_bytes: 1_500_000,
        ..Default::default()
    }
    .build(42);
    let (report, log) = run_logged(&trace, PolicyKind::BlueFs);

    assert_eq!(log.count("app_call"), report.app_requests);
    assert_eq!(log.count("stage_end"), report.stages as u64);
    assert_eq!(log.count("adaptation"), report.decisions.len() as u64);

    let (mut hits, mut misses, mut ra) = (0u64, 0u64, 0u64);
    let (mut flush_pages, mut spin_ups, mut disk_routes, mut wnic_routes) =
        (0u64, 0u64, 0u64, 0u64);
    for ev in log.events() {
        match *ev {
            Event::CacheRead {
                hit_pages,
                miss_pages,
                readahead_pages,
                ..
            } => {
                hits += hit_pages;
                misses += miss_pages;
                ra += readahead_pages;
            }
            Event::WritebackFlush { pages, .. } => flush_pages += pages,
            Event::DeviceTransition { name, .. } if name == "spin_up" => spin_ups += 1,
            Event::Decision { source, .. } => match source {
                ff_policy::Source::Disk => disk_routes += 1,
                ff_policy::Source::Wnic => wnic_routes += 1,
            },
            _ => {}
        }
    }
    let cs = report.cache_stats;
    assert_eq!((hits, misses), (cs.hits, cs.misses));
    assert_eq!(ra, cs.readahead_pages);
    assert!(cs.flushes > 0, "Make must trigger write-back");
    assert_eq!(log.count("writeback_flush"), cs.flushes);
    assert_eq!(flush_pages, cs.flushed_pages);
    assert_eq!(spin_ups, report.disk_meter.transition_count("spin_up"));
    // Every device request traces back to some routed decision.
    assert!(disk_routes > 0, "Make reads must route somewhere");
    assert_eq!(
        (report.disk_requests > 0, report.wnic_requests > 0),
        (disk_routes > 0, wnic_routes > 0)
    );
}

/// The summary counters a CountingRecorder accumulates must match the
/// full log of the same run — the cheap recorder loses nothing but the
/// payloads.
#[test]
fn counting_recorder_matches_event_log() {
    let trace = golden_trace();
    let mut counter = ff_sim::CountingRecorder::new();
    Simulation::new(SimConfig::default(), &trace)
        .policy(golden_policy())
        .run_recorded(&mut counter)
        .expect("valid trace");
    let (_, log) = run_logged(&trace, golden_policy());
    assert_eq!(counter.total(), log.len() as u64);
    assert_eq!(&log.counts(), counter.counts());
}
