//! Battery-lifetime accounting (extension).
//!
//! The paper's motivation is battery lifetime, not joules. This module
//! converts a [`crate::SimReport`]-measured I/O energy into the
//! metric a user feels: how much longer the battery lasts under one
//! policy than another, given the platform's non-I/O draw.
//!
//! Model: the battery holds `capacity` watt-hours; the platform draws a
//! constant `base_power` (CPU, memory, backlight) plus the simulated
//! I/O power. Lifetime = capacity / (base + mean I/O power). A 2007
//! thin-and-light: ~50 Wh pack, ~8 W platform draw.

use crate::report::SimReport;
use ff_base::{Dur, Joules, Watts};

/// Platform/battery constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Pack capacity.
    pub capacity_wh: f64,
    /// Non-I/O platform draw.
    pub base_power: Watts,
}

impl Battery {
    /// A 2007 thin-and-light laptop: 50 Wh pack, 8 W platform draw.
    pub fn laptop_2007() -> Self {
        Battery {
            capacity_wh: 50.0,
            base_power: Watts(8.0),
        }
    }

    /// Mean I/O power of a finished run.
    pub fn io_power(report: &SimReport) -> Watts {
        let secs = report.exec_time.as_secs_f64();
        if secs > 0.0 {
            Watts(report.total_energy().get() / secs)
        } else {
            Watts::ZERO
        }
    }

    /// Battery charge one *finite task* consumed: I/O energy plus the
    /// platform's base draw for the task's duration. This is the honest
    /// metric for bursty jobs — a slower policy cannot hide behind a
    /// lower mean power.
    pub fn task_drain(&self, report: &SimReport) -> Joules {
        report.total_energy() + self.base_power * report.exec_time
    }

    /// Fraction of the pack one task consumed, in percent (zero for a
    /// degenerate zero-capacity pack).
    pub fn task_drain_pct(&self, report: &SimReport) -> f64 {
        if self.capacity_wh <= 0.0 {
            return 0.0;
        }
        self.task_drain(report).get() / (self.capacity_wh * 3600.0) * 100.0
    }

    /// Battery lifetime if the machine ran this workload's power profile
    /// continuously (steady workloads: streaming, playback).
    pub fn lifetime(&self, report: &SimReport) -> Dur {
        let total = self.base_power.get() + Self::io_power(report).get();
        debug_assert!(total > 0.0);
        Dur::from_secs_f64(self.capacity_wh * 3600.0 / total)
    }

    /// Relative lifetime extension of `better` over `worse`, in percent
    /// (zero when the reference lifetime degenerates to zero).
    pub fn extension_pct(&self, better: &SimReport, worse: &SimReport) -> f64 {
        let a = self.lifetime(better).as_secs_f64();
        let b = self.lifetime(worse).as_secs_f64();
        if b <= 0.0 {
            return 0.0;
        }
        (a / b - 1.0) * 100.0
    }

    /// Energy the battery spends over `d` at this workload's profile.
    pub fn drain_over(&self, report: &SimReport, d: Dur) -> Joules {
        (self.base_power + Self::io_power(report)) * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulation};
    use ff_policy::PolicyKind;
    use ff_trace::{Workload, Xmms};

    fn report(kind: PolicyKind) -> SimReport {
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(300)),
            ..Default::default()
        }
        .build(4);
        Simulation::new(SimConfig::default(), &trace)
            .policy(kind)
            .run()
            .unwrap()
    }

    #[test]
    fn lifetime_is_capacity_over_power() {
        let r = report(PolicyKind::DiskOnly);
        let b = Battery::laptop_2007();
        let life = b.lifetime(&r).as_secs_f64();
        let expect = 50.0 * 3600.0 / (8.0 + Battery::io_power(&r).get());
        assert!((life - expect).abs() < 1.0);
        // An 8+ W platform drains 50 Wh in well under 6.25 h.
        assert!(life < 6.25 * 3600.0);
        assert!(life > 3.0 * 3600.0);
    }

    #[test]
    fn cheaper_policy_lives_longer() {
        let disk = report(PolicyKind::DiskOnly);
        let wnic = report(PolicyKind::WnicOnly);
        let b = Battery::laptop_2007();
        // xmms streaming: the WNIC is the cheaper device (sparse reads).
        assert!(wnic.total_energy() < disk.total_energy());
        let ext = b.extension_pct(&wnic, &disk);
        assert!(ext > 1.0, "extension {ext:.1}% too small");
        assert!(ext < 30.0, "extension {ext:.1}% implausibly large");
    }

    #[test]
    fn task_drain_penalises_slow_runs() {
        // Same xmms task: the disk run and the WNIC run have different
        // durations; task drain charges the platform for every second.
        let disk = report(PolicyKind::DiskOnly);
        let wnic = report(PolicyKind::WnicOnly);
        let b = Battery::laptop_2007();
        let d_drain = b.task_drain(&disk);
        let w_drain = b.task_drain(&wnic);
        // Platform draw dominates a 300 s task; the cheaper-and-similar-
        // duration WNIC run must drain less in total.
        assert!(w_drain < d_drain, "{w_drain} vs {d_drain}");
        assert!(b.task_drain_pct(&disk) > 0.0 && b.task_drain_pct(&disk) < 5.0);
    }

    #[test]
    fn drain_scales_linearly() {
        let r = report(PolicyKind::DiskOnly);
        let b = Battery::laptop_2007();
        let one = b.drain_over(&r, Dur::from_secs(60));
        let two = b.drain_over(&r, Dur::from_secs(120));
        assert!((two.get() - 2.0 * one.get()).abs() < 1e-9);
    }
}
