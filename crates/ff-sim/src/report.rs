//! Simulation results.

use ff_base::{Bytes, Dur, Joules, SimTime};
use ff_device::StateMeter;
use ff_policy::Source;
use ff_profile::Profile;

/// Per-evaluation-stage accounting (one row per 40 s stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// Stage ordinal (0-based).
    pub index: usize,
    /// Stage start.
    pub start: SimTime,
    /// Stage end.
    pub end: SimTime,
    /// Disk energy drawn during the stage.
    pub disk_energy: Joules,
    /// WNIC energy drawn during the stage.
    pub wnic_energy: Joules,
    /// Device-visible bytes fetched during the stage.
    pub fetched: Bytes,
}

impl StageSummary {
    /// Combined stage energy.
    pub fn total_energy(&self) -> Joules {
        self.disk_energy + self.wnic_energy
    }

    /// Mean system I/O power over the stage.
    pub fn mean_power_w(&self) -> f64 {
        let secs = self.end.saturating_since(self.start).as_secs_f64();
        if secs > 0.0 {
            self.total_energy().get() / secs
        } else {
            0.0
        }
    }
}

/// What one simulation run produced — the numbers behind every figure.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Policy name (figure legend).
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Completion time of the last application request.
    pub exec_time: Dur,
    /// Total disk energy (service + idle + transitions).
    pub disk_energy: Joules,
    /// Total WNIC energy.
    pub wnic_energy: Joules,
    /// Per-state disk accounting.
    pub disk_meter: StateMeter,
    /// Per-state WNIC accounting.
    pub wnic_meter: StateMeter,
    /// Application read/write system calls replayed.
    pub app_requests: u64,
    /// Device requests sent to the disk (demand + readahead + write-back).
    pub disk_requests: u64,
    /// Device requests sent to the WNIC.
    pub wnic_requests: u64,
    /// Bytes fetched from the disk.
    pub disk_bytes: Bytes,
    /// Bytes fetched over the WNIC.
    pub wnic_bytes: Bytes,
    /// Flash-tier energy (zero when no flash is configured).
    pub flash_energy: Joules,
    /// Flash meter, when a flash tier is configured.
    pub flash_meter: Option<StateMeter>,
    /// Requests served by the flash tier.
    pub flash_requests: u64,
    /// Bytes served by / buffered into the flash tier.
    pub flash_bytes: Bytes,
    /// Buffer-cache demand hits / misses (pages).
    pub cache_hits: u64,
    /// Buffer-cache demand misses (pages).
    pub cache_misses: u64,
    /// Full buffer-cache activity counters (readahead, flush rounds) —
    /// the ground truth the observability events are checked against.
    pub cache_stats: ff_cache::CacheStats,
    /// Evaluation stages completed.
    pub stages: usize,
    /// Fault actions applied (outage/fade onsets, disk-storm touches,
    /// profile injections — clears are not counted).
    pub faults_injected: u64,
    /// Network-request timeouts that led to a retry (injected server
    /// outages only).
    pub retries: u64,
    /// Requests rerouted (or stalled) after an exhausted retry ladder.
    pub failovers: u64,
    /// The profile the policy recorded for the next run, if any.
    pub recorded_profile: Option<Profile>,
    /// The policy's decision history `(when, source, trigger)`, if it
    /// keeps one (FlexFetch does).
    pub decisions: Vec<(SimTime, Source, &'static str)>,
    /// Per-stage energy accounting.
    pub stage_summaries: Vec<StageSummary>,
}

impl SimReport {
    /// Combined I/O energy — the y-axis of every figure in §3.3 (includes
    /// the flash tier when configured).
    pub fn total_energy(&self) -> Joules {
        self.disk_energy + self.wnic_energy + self.flash_energy
    }

    /// Demand-page hit ratio in `[0, 1]` (0 when nothing was read).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<12} E={:>9} (disk {:>9} wnic {:>9})  T={:>9}  hit={:4.1}%  reqs d/w={}/{}",
            self.policy,
            self.workload,
            self.total_energy().to_string(),
            self.disk_energy.to_string(),
            self.wnic_energy.to_string(),
            self.exec_time.to_string(),
            self.hit_ratio() * 100.0,
            self.disk_requests,
            self.wnic_requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "FlexFetch".into(),
            workload: "grep".into(),
            exec_time: Dur::from_secs(100),
            disk_energy: Joules(120.0),
            wnic_energy: Joules(30.0),
            disk_meter: StateMeter::new(),
            wnic_meter: StateMeter::new(),
            app_requests: 10,
            disk_requests: 6,
            wnic_requests: 4,
            disk_bytes: Bytes(1000),
            wnic_bytes: Bytes(500),
            flash_energy: Joules::ZERO,
            flash_meter: None,
            flash_requests: 0,
            flash_bytes: Bytes::ZERO,
            cache_hits: 30,
            cache_misses: 10,
            cache_stats: ff_cache::CacheStats::default(),
            stages: 3,
            faults_injected: 0,
            retries: 0,
            failovers: 0,
            recorded_profile: None,
            decisions: Vec::new(),
            stage_summaries: Vec::new(),
        }
    }

    #[test]
    fn totals_and_ratio() {
        let r = report();
        assert_eq!(r.total_energy(), Joules(150.0));
        assert!((r.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_ratio_is_zero() {
        let mut r = report();
        r.cache_hits = 0;
        r.cache_misses = 0;
        assert_eq!(r.hit_ratio(), 0.0);
    }

    #[test]
    fn stage_summary_math() {
        let s = StageSummary {
            index: 0,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(40),
            disk_energy: Joules(30.0),
            wnic_energy: Joules(50.0),
            fetched: Bytes(1000),
        };
        assert_eq!(s.total_energy(), Joules(80.0));
        assert!((s.mean_power_w() - 2.0).abs() < 1e-12);
        let degenerate = StageSummary { end: s.start, ..s };
        assert_eq!(degenerate.mean_power_w(), 0.0);
    }

    #[test]
    fn summary_mentions_policy_and_energy() {
        let s = report().summary();
        assert!(s.contains("FlexFetch"));
        assert!(s.contains("150.00J"));
    }
}
