//! # ff-sim — the trace-driven simulator
//!
//! Reproduces the paper's evaluation vehicle (§3.1): a discrete-event
//! simulator managing the two storage devices and the in-memory buffer
//! cache, replaying application system-call traces under a data-source
//! selection policy.
//!
//! **Replay semantics.** Think times are device-independent (§2.1): the
//! replayer preserves, per process, the gap between a call's completion
//! and the next call's issue as recorded in the trace, and re-derives
//! every service time from the simulated devices. Requests first hit the
//! buffer cache; only demand misses, readahead, and write-back traffic
//! reach a device. Total execution time therefore depends on the policy,
//! exactly as `T_disk` / `T_network` do in the paper.
//!
//! **Stage boundaries.** Every [`SimConfig::stage_len`] of simulated
//! time the simulator closes an evaluation stage and hands the policy a
//! [`ff_policy::StageReport`] with the device-visible bursts observed
//! and the energy each device actually drew — the input to FlexFetch's
//! §2.3.1 audit.
//!
//! **Pinned files.** Files listed in [`SimConfig::disk_only_files`]
//! exist only on the local disk (the §3.3.4 xmms scenario): requests for
//! them bypass the policy, always hit the disk, and are reported to the
//! policy via [`ff_policy::Policy::on_external_disk`] so FlexFetch can
//! free-ride.

//! ```
//! use ff_policy::PolicyKind;
//! use ff_sim::{SimConfig, Simulation};
//! use ff_trace::{Grep, Workload};
//!
//! let trace = Grep { files: 20, total_bytes: 800_000, ..Default::default() }.build(1);
//! let report = Simulation::new(SimConfig::default(), &trace)
//!     .policy(PolicyKind::DiskOnly)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.app_requests, trace.len() as u64);
//! assert!(report.total_energy().get() > 0.0);
//! assert_eq!(report.wnic_requests, 0);
//! ```

#![warn(missing_docs)]

pub mod battery;
pub mod config;
pub mod faults;
pub mod record;
pub mod report;
pub mod sim;

pub use battery::Battery;
pub use config::SimConfig;
pub use faults::{Fault, FaultPlan, ProfileFaultMode, RetryPolicy};
pub use record::{CountingRecorder, Event, EventLog, NullRecorder, Recorder};
pub use report::{SimReport, StageSummary};
pub use sim::Simulation;

// Send-bounds audit for the parallel sweep engine (`ff-bench::pool`):
// grid workers build a `Simulation` from a shared `&SimConfig`/trace and
// send the finished `SimReport`/`EventLog` back over a channel, so these
// types must stay `Send` (and the shared inputs `Sync`). Compile-time
// assertions — a lost auto-trait (e.g. an `Rc` or a raw pointer sneaking
// into a report field) fails the build here, with a named culprit,
// instead of deep inside a pool closure.
#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn grid_task_inputs_are_sync() {
        assert_sync::<SimConfig>();
        assert_sync::<FaultPlan>();
        assert_sync::<RetryPolicy>();
    }

    #[test]
    fn grid_task_outputs_are_send() {
        assert_send::<SimConfig>();
        assert_send::<SimReport>();
        assert_send::<StageSummary>();
        assert_send::<EventLog>();
        assert_send::<CountingRecorder>();
        assert_send::<NullRecorder>();
        assert_send::<Event>();
        assert_send::<FaultPlan>();
        assert_send::<Battery>();
    }
}
