//! Deterministic fault injection (§2.3's hostile environment, scripted).
//!
//! The paper's adaptation machinery exists because the mobile
//! environment misbehaves: wireless bandwidth fades with location, the
//! remote server drops off the network, other programs spin the disk up,
//! and the recorded profile can be stale or plain wrong. A [`FaultPlan`]
//! scripts exactly those perturbations against a simulation run:
//!
//! * [`Fault::BandwidthFade`] — the link rate drops to `mbps` for a
//!   window, then restores to whatever it was before the fade;
//! * [`Fault::LinkOutage`] — the card loses association entirely; the
//!   router fails hoarded requests over to the disk and stalls
//!   network-only ones until the link returns;
//! * [`Fault::ServerOutage`] — the link is up but the server stops
//!   answering; each network request walks the [`RetryPolicy`] ladder
//!   (timeout → bounded exponential backoff → failover to disk);
//! * [`Fault::DiskStorm`] — a non-profiled background process issues a
//!   train of disk reads (`on_external_disk` from the policies' point of
//!   view), enabling §2.3.3 free-riding;
//! * [`Fault::ProfileFault`] — a stale or corrupted execution profile is
//!   handed to the policy mid-run.
//!
//! Plans are plain data: the same plan against the same seed and trace
//! replays to a byte-identical event log. [`FaultPlan::seeded`] derives a
//! random-but-reproducible plan from a seed for chaos testing.

use ff_base::{seeded_rng, split_seed, Bytes, Dur, Error, Result, SimTime};
use ff_profile::{IoBurst, MergedRequest, Profile, ProfiledBurst};
use ff_trace::{IoOp, Trace};
use rand::Rng;

/// How an injected profile is wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileFaultMode {
    /// The profile no longer exists or no longer matches the program —
    /// modelled as an *empty* history (the first-run situation, §2.3.1).
    Stale,
    /// The profile actively lies: it describes a sparse network-friendly
    /// trickle regardless of what the program really does.
    Corrupt,
}

impl ProfileFaultMode {
    /// Stable tag used in event streams and reports.
    pub fn label(self) -> &'static str {
        match self {
            ProfileFaultMode::Stale => "stale",
            ProfileFaultMode::Corrupt => "corrupt",
        }
    }
}

/// One scripted perturbation, anchored at `at` after simulation start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The link rate drops to `mbps` for `dur`, then restores.
    BandwidthFade {
        /// Onset, relative to simulation start.
        at: Dur,
        /// How long the fade lasts.
        dur: Dur,
        /// Faded link bandwidth in Mbit/s.
        mbps: f64,
    },
    /// The wireless link loses association for `dur`.
    LinkOutage {
        /// Onset, relative to simulation start.
        at: Dur,
        /// How long the link stays down.
        dur: Dur,
    },
    /// The remote server stops answering for `dur` (the link stays up,
    /// so requests time out instead of failing fast).
    ServerOutage {
        /// Onset, relative to simulation start.
        at: Dur,
        /// How long the server stays unreachable.
        dur: Dur,
    },
    /// A background process reads from the disk `touches` times, `gap`
    /// apart, `bytes` per touch — keeping the disk spinning.
    DiskStorm {
        /// First touch, relative to simulation start.
        at: Dur,
        /// Number of touches.
        touches: u32,
        /// Interval between touches.
        gap: Dur,
        /// Bytes read per touch.
        bytes: u64,
    },
    /// A stale or corrupted profile is injected into the policy.
    ProfileFault {
        /// Injection instant, relative to simulation start.
        at: Dur,
        /// What is wrong with the injected profile.
        mode: ProfileFaultMode,
    },
}

impl Fault {
    /// Onset of the fault, relative to simulation start.
    pub fn at(&self) -> Dur {
        match *self {
            Fault::BandwidthFade { at, .. }
            | Fault::LinkOutage { at, .. }
            | Fault::ServerOutage { at, .. }
            | Fault::DiskStorm { at, .. }
            | Fault::ProfileFault { at, .. } => at,
        }
    }

    /// Stable tag naming the fault kind.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::BandwidthFade { .. } => "bandwidth_fade",
            Fault::LinkOutage { .. } => "link_outage",
            Fault::ServerOutage { .. } => "server_outage",
            Fault::DiskStorm { .. } => "disk_storm",
            Fault::ProfileFault { .. } => "profile_fault",
        }
    }

    fn validate(&self) -> Result<()> {
        match *self {
            Fault::BandwidthFade { dur, mbps, .. } => {
                if dur.is_zero() {
                    return Err(Error::Fault("bandwidth fade with zero duration".into()));
                }
                if !mbps.is_finite() || mbps <= 0.0 {
                    return Err(Error::Fault(format!(
                        "bandwidth fade to a non-positive rate ({mbps} Mbit/s)"
                    )));
                }
            }
            Fault::LinkOutage { dur, .. } => {
                if dur.is_zero() {
                    return Err(Error::Fault("link outage with zero duration".into()));
                }
            }
            Fault::ServerOutage { dur, .. } => {
                if dur.is_zero() {
                    return Err(Error::Fault("server outage with zero duration".into()));
                }
            }
            Fault::DiskStorm { touches, bytes, .. } => {
                if touches == 0 {
                    return Err(Error::Fault("disk storm with zero touches".into()));
                }
                if touches > 100_000 {
                    return Err(Error::Fault(format!(
                        "disk storm with {touches} touches (max 100000)"
                    )));
                }
                if bytes == 0 {
                    return Err(Error::Fault("disk storm reading zero bytes".into()));
                }
            }
            Fault::ProfileFault { .. } => {}
        }
        Ok(())
    }
}

/// Per-request behaviour against an unresponsive server: a request times
/// out after [`RetryPolicy::timeout`], then retries after an
/// exponentially growing backoff (`backoff`, `2·backoff`, `4·backoff`,
/// …) up to [`RetryPolicy::max_retries`] attempts, after which the
/// router fails over to the disk (or, for network-only data, stalls
/// until the server returns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// How long a request waits on the wire before giving up.
    pub timeout: Dur,
    /// Base backoff between attempts; doubles each retry.
    pub backoff: Dur,
    /// Attempts before failing over (1–16).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Dur::from_secs(2),
            backoff: Dur::from_millis(500),
            max_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// Reject nonsensical ladders (zero timeout, zero attempts, or a
    /// retry count whose doubling backoff overflows).
    pub fn validate(&self) -> Result<()> {
        if self.timeout.is_zero() {
            return Err(Error::Fault("retry policy with zero timeout".into()));
        }
        if self.max_retries == 0 || self.max_retries > 16 {
            return Err(Error::Fault(format!(
                "retry policy with {} attempts (want 1..=16)",
                self.max_retries
            )));
        }
        Ok(())
    }

    /// Worst-case wall-clock cost of one exhausted ladder: every timeout
    /// plus every backoff interval.
    pub fn max_ladder(&self) -> Dur {
        let mut total = Dur::ZERO;
        for attempt in 0..self.max_retries {
            total += self.timeout;
            total += self.backoff * (1u64 << attempt.min(16));
        }
        total
    }
}

/// A scripted set of faults, applied deterministically to one run.
///
/// Build a plan with the `with_*` combinators, attach it via
/// [`crate::SimConfig::with_faults`], and the simulator injects each
/// fault at its scripted onset — same seed, same plan, same run,
/// byte-for-byte:
///
/// ```
/// use ff_base::Dur;
/// use ff_policy::PolicyKind;
/// use ff_sim::{FaultPlan, SimConfig, Simulation};
/// use ff_trace::{Grep, Workload};
///
/// let plan = FaultPlan::none()
///     .with_link_outage(Dur::from_millis(10), Dur::from_millis(500));
/// assert!(plan.validate().is_ok());
///
/// let trace = Grep { files: 20, total_bytes: 800_000, ..Default::default() }.build(1);
/// let report = Simulation::new(SimConfig::default().with_faults(plan), &trace)
///     .policy(PolicyKind::WnicOnly)
///     .run()
///     .unwrap();
/// // The outage was injected and survived (retries and/or failover).
/// assert_eq!(report.faults_injected, 1);
/// assert_eq!(report.app_requests, trace.len() as u64);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults, in no particular order (the simulator sorts by onset).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the default — every existing configuration
    /// keeps its exact behaviour).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a link outage: no association from `at` for `dur`.
    pub fn with_link_outage(mut self, at: Dur, dur: Dur) -> Self {
        self.faults.push(Fault::LinkOutage { at, dur });
        self
    }

    /// Add a bandwidth fade to `mbps` from `at` for `dur`.
    pub fn with_bandwidth_fade(mut self, at: Dur, dur: Dur, mbps: f64) -> Self {
        self.faults.push(Fault::BandwidthFade { at, dur, mbps });
        self
    }

    /// Add a server outage: no responses from `at` for `dur`.
    pub fn with_server_outage(mut self, at: Dur, dur: Dur) -> Self {
        self.faults.push(Fault::ServerOutage { at, dur });
        self
    }

    /// Add a background disk storm: `touches` reads of `bytes` bytes,
    /// `gap` apart, starting at `at`.
    pub fn with_disk_storm(mut self, at: Dur, touches: u32, gap: Dur, bytes: u64) -> Self {
        self.faults.push(Fault::DiskStorm {
            at,
            touches,
            gap,
            bytes,
        });
        self
    }

    /// Add a profile injection at `at`.
    pub fn with_profile_fault(mut self, at: Dur, mode: ProfileFaultMode) -> Self {
        self.faults.push(Fault::ProfileFault { at, mode });
        self
    }

    /// Validate every fault in the plan.
    pub fn validate(&self) -> Result<()> {
        for f in &self.faults {
            f.validate()?;
        }
        Ok(())
    }

    /// A random-but-reproducible plan: 2–5 faults of mixed kinds spread
    /// over `span`. The same `(seed, span)` always yields the same plan.
    pub fn seeded(seed: u64, span: Dur) -> Self {
        let span_us = span.as_micros().max(1_000_000);
        let mut plan = FaultPlan::none();
        let mut rng = seeded_rng(split_seed(seed, 0xFA17));
        let n = rng.gen_range(2..=5u32);
        for _ in 0..n {
            let at = Dur::from_micros(rng.gen_range(0..span_us));
            // 0.5–20 s of trouble per fault.
            let dur = Dur::from_micros(rng.gen_range(500_000..=20_000_000u64));
            let fault = match rng.gen_range(0..5u32) {
                0 => Fault::LinkOutage { at, dur },
                1 => Fault::BandwidthFade {
                    at,
                    dur,
                    mbps: rng.gen_range(0.5..5.5f64),
                },
                2 => Fault::ServerOutage { at, dur },
                3 => Fault::DiskStorm {
                    at,
                    touches: rng.gen_range(2..=12u32),
                    gap: Dur::from_micros(rng.gen_range(1_000_000..=8_000_000u64)),
                    bytes: rng.gen_range(4_096..=1_048_576u64),
                },
                _ => Fault::ProfileFault {
                    at,
                    mode: if rng.gen_range(0..2u32) == 0 {
                        ProfileFaultMode::Stale
                    } else {
                        ProfileFaultMode::Corrupt
                    },
                },
            };
            plan.faults.push(fault);
        }
        plan
    }
}

/// Build the profile a [`Fault::ProfileFault`] hands to the policy.
///
/// *Stale* is an empty history — the recorded profile was lost or
/// belongs to a different program version, so the policy is back in the
/// first-run situation. *Corrupt* is adversarial: it claims the program
/// does a sparse 64 KiB trickle every 6 seconds (textbook network-
/// friendly), no matter what the trace actually holds — bad advice for
/// any dense workload that trusts it.
pub fn injected_profile(mode: ProfileFaultMode, trace: &Trace) -> Profile {
    match mode {
        ProfileFaultMode::Stale => Profile::empty(trace.name.clone()),
        ProfileFaultMode::Corrupt => {
            // Pick the largest traced file so the fake requests stay in
            // bounds; fall back to an empty profile for a fileless trace.
            let Some(victim) = trace.files.iter().max_by_key(|m| m.size) else {
                return Profile::empty(trace.name.clone());
            };
            let len = Bytes(victim.size.get().clamp(1, 65_536));
            let stats = trace.stats();
            let n = (stats.span.as_micros() / 6_000_000).clamp(10, 120);
            let mut bursts = Vec::new();
            let mut t = SimTime::ZERO;
            for _ in 0..n {
                let end = t + Dur::from_millis(5);
                bursts.push(ProfiledBurst {
                    burst: IoBurst {
                        start: t,
                        end,
                        requests: vec![MergedRequest {
                            file: victim.id,
                            op: IoOp::Read,
                            offset: 0,
                            len,
                        }],
                    },
                    gap_after: Dur::from_secs(6),
                });
                t = end + Dur::from_secs(6);
            }
            Profile {
                app: trace.name.clone(),
                bursts,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_collect_faults_in_order() {
        let plan = FaultPlan::none()
            .with_link_outage(Dur::from_secs(10), Dur::from_secs(5))
            .with_bandwidth_fade(Dur::from_secs(20), Dur::from_secs(5), 1.0)
            .with_server_outage(Dur::from_secs(30), Dur::from_secs(5))
            .with_disk_storm(Dur::from_secs(40), 4, Dur::from_secs(2), 65_536)
            .with_profile_fault(Dur::from_secs(50), ProfileFaultMode::Corrupt);
        assert_eq!(plan.faults.len(), 5);
        assert!(plan.validate().is_ok());
        let labels: Vec<&str> = plan.faults.iter().map(|f| f.label()).collect();
        assert_eq!(
            labels,
            [
                "link_outage",
                "bandwidth_fade",
                "server_outage",
                "disk_storm",
                "profile_fault"
            ]
        );
    }

    #[test]
    fn validation_rejects_degenerate_faults() {
        for bad in [
            Fault::LinkOutage {
                at: Dur::ZERO,
                dur: Dur::ZERO,
            },
            Fault::ServerOutage {
                at: Dur::ZERO,
                dur: Dur::ZERO,
            },
            Fault::BandwidthFade {
                at: Dur::ZERO,
                dur: Dur::from_secs(1),
                mbps: 0.0,
            },
            Fault::BandwidthFade {
                at: Dur::ZERO,
                dur: Dur::from_secs(1),
                mbps: f64::NAN,
            },
            Fault::DiskStorm {
                at: Dur::ZERO,
                touches: 0,
                gap: Dur::ZERO,
                bytes: 1,
            },
            Fault::DiskStorm {
                at: Dur::ZERO,
                touches: 1,
                gap: Dur::ZERO,
                bytes: 0,
            },
        ] {
            let plan = FaultPlan { faults: vec![bad] };
            assert!(
                matches!(plan.validate(), Err(Error::Fault(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn retry_policy_validates_and_bounds_the_ladder() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy {
            timeout: Dur::ZERO,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_retries: 17,
            ..Default::default()
        }
        .validate()
        .is_err());
        // Default ladder: 4×2 s timeouts + 0.5+1+2+4 s backoffs = 15.5 s.
        assert_eq!(
            RetryPolicy::default().max_ladder(),
            Dur::from_millis(15_500)
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_valid() {
        let span = Dur::from_secs(120);
        for seed in 0..50 {
            let a = FaultPlan::seeded(seed, span);
            let b = FaultPlan::seeded(seed, span);
            assert_eq!(a, b, "seed {seed} must reproduce");
            assert!(a.validate().is_ok(), "seed {seed} must be valid");
            assert!((2..=5).contains(&a.faults.len()), "seed {seed}");
            for f in &a.faults {
                assert!(f.at() <= span, "seed {seed}: fault after span");
            }
        }
        assert_ne!(
            FaultPlan::seeded(1, span),
            FaultPlan::seeded(2, span),
            "different seeds should differ"
        );
    }

    #[test]
    fn stale_profile_is_empty_and_corrupt_is_sparse() {
        let mut trace = ff_trace::Trace::new("t");
        trace.files.insert(ff_trace::FileMeta {
            id: ff_trace::FileId(7),
            name: "big".into(),
            size: Bytes::mib(10),
        });
        trace.records.push(ff_trace::TraceRecord {
            pid: 1,
            pgid: 1,
            file: ff_trace::FileId(7),
            op: IoOp::Read,
            offset: 0,
            len: Bytes(4096),
            ts: SimTime::ZERO,
            dur: Dur::from_millis(1),
        });
        let stale = injected_profile(ProfileFaultMode::Stale, &trace);
        assert!(stale.is_empty());
        let corrupt = injected_profile(ProfileFaultMode::Corrupt, &trace);
        assert!(corrupt.len() >= 10, "corrupt profile must claim a trickle");
        for b in &corrupt.bursts {
            assert_eq!(b.burst.requests[0].file, ff_trace::FileId(7));
            assert!(b.burst.requests[0].len <= Bytes(65_536));
            assert_eq!(b.gap_after, Dur::from_secs(6));
        }
        // An empty trace degrades to an empty profile, not a panic.
        let none = injected_profile(ProfileFaultMode::Corrupt, &ff_trace::Trace::new("e"));
        assert!(none.is_empty());
    }
}
