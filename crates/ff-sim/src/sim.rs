//! The replay engine.

use crate::config::SimConfig;
use crate::faults::{Fault, FaultPlan, ProfileFaultMode};
use crate::record::{Device, Event as ObsEvent, NullRecorder, Recorder};
use crate::report::SimReport;
use ff_base::{size::PAGE_SIZE, Bytes, BytesPerSec, Dur, Error, Joules, Result, SimTime};
use ff_cache::cscan::{BlockRequest, CScanQueue};
use ff_cache::{BufferCache, FlashCache, PageKey};
use ff_device::{DeviceRequest, DiskModel, FlashModel, PowerModel, ServiceOutcome, WnicModel};
use ff_policy::{AppRequest, FaultNotice, Policy, PolicyCtx, PolicyKind, Source};
use ff_profile::burst::OnlineBurstBuilder;
use ff_profile::BurstExtractor;
use ff_trace::{DiskLayout, FileId, IoOp, Trace, TraceRecord};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One simulation run: a trace, a config, and a policy.
pub struct Simulation<'t> {
    config: SimConfig,
    trace: &'t Trace,
    policy: Box<dyn Policy>,
}

impl<'t> Simulation<'t> {
    /// New simulation of `trace` under `config` (policy defaults to
    /// Disk-only; set one with [`Simulation::policy`]).
    pub fn new(config: SimConfig, trace: &'t Trace) -> Self {
        Simulation {
            config,
            trace,
            policy: PolicyKind::DiskOnly.build(),
        }
    }

    /// Select the policy by recipe.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = kind.build();
        self
    }

    /// Install a custom policy object.
    pub fn policy_boxed(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = policy;
        self
    }

    /// Run to completion.
    pub fn run(self) -> Result<SimReport> {
        let mut null = NullRecorder;
        self.run_recorded(&mut null)
    }

    /// Run to completion, streaming observability [`ObsEvent`]s into
    /// `recorder` (see [`crate::record`]). A [`NullRecorder`] makes
    /// this equivalent to [`Simulation::run`]; any recorder leaves the
    /// returned [`SimReport`] unchanged — recorders observe, they do
    /// not steer.
    ///
    /// ```
    /// use ff_policy::PolicyKind;
    /// use ff_sim::{EventLog, SimConfig, Simulation};
    /// use ff_trace::{Grep, Workload};
    ///
    /// let trace = Grep { files: 8, total_bytes: 400_000, ..Default::default() }.build(42);
    /// let mut log = EventLog::new();
    /// let report = Simulation::new(SimConfig::default(), &trace)
    ///     .policy(PolicyKind::DiskOnly)
    ///     .run_recorded(&mut log)
    ///     .unwrap();
    /// assert_eq!(log.count("app_call"), report.app_requests);
    /// assert!(log.count("decision") > 0);
    /// ```
    pub fn run_recorded(self, recorder: &mut dyn Recorder) -> Result<SimReport> {
        self.trace.validate()?;
        self.config.faults.validate()?;
        self.config.retry.validate()?;
        if self.trace.is_empty() {
            return Err(Error::Config("cannot simulate an empty trace".into()));
        }
        Runner::new(self.config, self.trace, self.policy, recorder).run()
    }
}

/// Discrete events, ordered by `(time, seq)` for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Issue the next system call of a process group (one program runs
    /// as one closed loop, §2.1).
    Issue(u32),
    /// Write-back flusher wake-up.
    Flush,
    /// Evaluation-stage boundary.
    StageEnd,
    /// Apply the next scheduled WNIC bandwidth change.
    WnicChange(usize),
    /// Apply the fault action at this index of `Runner::fault_actions`
    /// (actions live in a side table so this enum stays `Ord`).
    Fault(usize),
}

/// One expanded, instant-anchored fault action. A [`Fault`] window
/// becomes an onset/clear pair; a [`Fault::DiskStorm`] becomes one
/// action per touch.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    /// Link association lost until `until`.
    LinkDown { until: SimTime },
    /// Link re-associated.
    LinkUp,
    /// Server unreachable until `until`.
    ServerDown { until: SimTime },
    /// Server answering again.
    ServerUp,
    /// Bandwidth fade begins: drop the link rate to `mbps`.
    FadeStart { mbps: f64 },
    /// Bandwidth fade ends: restore the pre-fade rate.
    FadeEnd,
    /// A background process reads `bytes` bytes from the disk.
    DiskTouch { bytes: u64 },
    /// Hand the policy a stale/corrupted replacement profile.
    InjectProfile { mode: ProfileFaultMode },
}

/// Expand a fault plan into instant-anchored actions, stably sorted by
/// onset (ties keep plan order — deterministic by construction).
fn expand_faults(plan: &FaultPlan) -> Vec<(Dur, FaultAction)> {
    let mut actions = Vec::new();
    for f in &plan.faults {
        match *f {
            Fault::LinkOutage { at, dur } => {
                let until = SimTime::ZERO + at + dur;
                actions.push((at, FaultAction::LinkDown { until }));
                actions.push((at + dur, FaultAction::LinkUp));
            }
            Fault::BandwidthFade { at, dur, mbps } => {
                actions.push((at, FaultAction::FadeStart { mbps }));
                actions.push((at + dur, FaultAction::FadeEnd));
            }
            Fault::ServerOutage { at, dur } => {
                let until = SimTime::ZERO + at + dur;
                actions.push((at, FaultAction::ServerDown { until }));
                actions.push((at + dur, FaultAction::ServerUp));
            }
            Fault::DiskStorm {
                at,
                touches,
                gap,
                bytes,
            } => {
                for k in 0..u64::from(touches) {
                    actions.push((at + gap * k, FaultAction::DiskTouch { bytes }));
                }
            }
            Fault::ProfileFault { at, mode } => {
                actions.push((at, FaultAction::InjectProfile { mode }));
            }
        }
    }
    actions.sort_by_key(|&(at, _)| at);
    actions
}

type QueuedEvent = (SimTime, u64, EventKind);

/// A list of contiguous page runs `(first_page, n_pages)`.
type PageRuns = Vec<(u64, u64)>;

/// The simulator's view of the remote content server: the explicit
/// state behind the retry / backoff / failover machinery.
///
/// `Healthy` means WNIC requests flow normally. An injected
/// [`Fault::ServerOutage`](crate::faults::Fault::ServerOutage) moves
/// the machine to `Down` (link up, server silent) until the merged end
/// of all overlapping outage windows. The first hoarded request to
/// exhaust the retry ladder moves it to `MarkedDead`: the client
/// remembers the server is dead, so later hoarded requests fail over
/// to the disk immediately instead of re-walking the ladder. A
/// `ServerUp` clear at or after the outage end returns the machine to
/// `Healthy` from either degraded state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerPathState {
    /// The server answers; requests ride the WNIC unimpeded.
    Healthy,
    /// An outage is active until the carried instant.
    Down(SimTime),
    /// The ladder was exhausted: carries the outage end and the instant
    /// until which hoarded requests skip the ladder. The second is
    /// never later than the first — an outage extension after marking
    /// stretches the outage, not the memory of the exhausted ladder.
    MarkedDead(SimTime, SimTime),
}

/// Inputs to the [`ServerPathState`] machine. Every state change goes
/// through the single transition site [`ServerPath::apply`].
enum ServerPathEvent {
    /// A server outage starts (or extends) — active until the instant.
    OutageStart(SimTime),
    /// A `ServerUp` restore arrived (moot if the outage was extended).
    OutageEnd,
    /// A hoarded request walked the full retry ladder unanswered.
    LadderExhausted,
}

/// The server-path machine plus its undrained transition log. The
/// runner drains the log into [`ObsEvent::ServerPathChange`] events —
/// the trace export hook that makes the failover state observable.
struct ServerPath {
    state: ServerPathState,
    /// Timestamped `(at, new-state label)` changes awaiting drain.
    changes: Vec<(SimTime, &'static str)>,
}

impl ServerPath {
    fn new() -> Self {
        ServerPath {
            state: ServerPathState::Healthy,
            changes: Vec::new(),
        }
    }

    /// Log one observable state change (drained by the runner).
    fn transition(&mut self, at: SimTime, state: &'static str) {
        self.changes.push((at, state));
    }

    /// The single transition site: feed one event through the machine.
    /// Returns whether the event was accepted — the caller reacts to an
    /// accepted event (emits, notifies the policy) and ignores a stale
    /// one (e.g. a `ServerUp` overtaken by an outage extension).
    fn apply(&mut self, at: SimTime, ev: ServerPathEvent) -> bool {
        match self.state {
            ServerPathState::Healthy => match ev {
                ServerPathEvent::OutageStart(until) => {
                    self.transition(at, "down");
                    self.state = ServerPathState::Down(until);
                    true
                }
                _ => false,
            },
            ServerPathState::Down(until) => match ev {
                ServerPathEvent::OutageStart(more) => {
                    self.state = ServerPathState::Down(until.max(more));
                    true
                }
                ServerPathEvent::OutageEnd if at >= until => {
                    self.transition(at, "healthy");
                    self.state = ServerPathState::Healthy;
                    true
                }
                ServerPathEvent::OutageEnd => false,
                ServerPathEvent::LadderExhausted => {
                    self.transition(at, "dead");
                    self.state = ServerPathState::MarkedDead(until, until);
                    true
                }
            },
            ServerPathState::MarkedDead(until, dead) => match ev {
                ServerPathEvent::OutageStart(more) => {
                    self.state = ServerPathState::MarkedDead(until.max(more), dead);
                    true
                }
                ServerPathEvent::OutageEnd if at >= until => {
                    self.transition(at, "healthy");
                    self.state = ServerPathState::Healthy;
                    true
                }
                ServerPathEvent::OutageEnd => false,
                ServerPathEvent::LadderExhausted => {
                    self.state = ServerPathState::MarkedDead(until, until);
                    true
                }
            },
        }
    }

    /// End of the outage window active at `now`, if any.
    fn outage_until(&self, now: SimTime) -> Option<SimTime> {
        match self.state {
            ServerPathState::Down(until) | ServerPathState::MarkedDead(until, _) if now < until => {
                Some(until)
            }
            _ => None,
        }
    }

    /// Is the server remembered dead at `now` (ladder already walked),
    /// so hoarded requests fail over without re-walking it?
    fn dead_for(&self, now: SimTime) -> bool {
        matches!(self.state, ServerPathState::MarkedDead(_, dead) if now < dead)
    }

    /// Drain the accumulated transition labels.
    fn take_changes(&mut self) -> Vec<(SimTime, &'static str)> {
        std::mem::take(&mut self.changes)
    }
}

struct Runner<'t, 'r> {
    cfg: SimConfig,
    trace: &'t Trace,
    policy: Box<dyn Policy>,
    /// Observability sink; `tracing` caches `recorder.enabled()` so the
    /// disabled path never constructs events.
    recorder: &'r mut dyn Recorder,
    tracing: bool,
    disk: DiskModel,
    wnic: WnicModel,
    /// Optional flash tier: device model + membership tracker.
    flash: Option<(FlashModel, FlashCache)>,
    cache: BufferCache,
    layout: DiskLayout,
    /// Per-process-group `(record index, think time after)` queues,
    /// consumed front to back.
    queues: BTreeMap<u32, std::collections::VecDeque<(usize, Dur)>>,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    remaining_calls: usize,
    // Fault injection.
    /// Expanded fault actions, indexed by `EventKind::Fault`.
    fault_actions: Vec<(Dur, FaultAction)>,
    /// End of the current injected link outage, while one is active.
    link_down_until: Option<SimTime>,
    /// The explicit retry / backoff / failover machine for the remote
    /// server, with its undrained transition log.
    server_path: ServerPath,
    /// Pre-fade bandwidths, pushed on fade start and popped on fade end
    /// (a stack so nested fades restore in order).
    fade_restore: Vec<BytesPerSec>,
    faults_injected: u64,
    fault_retries: u64,
    fault_failovers: u64,
    // Stage tracking.
    observed: OnlineBurstBuilder,
    stage_index: usize,
    stage_start: SimTime,
    disk_mark: Joules,
    wnic_mark: Joules,
    // Statistics.
    stage_summaries: Vec<crate::report::StageSummary>,
    /// Device bytes at the last stage boundary (per-stage fetch delta).
    stage_bytes_mark: Bytes,
    last_completion: SimTime,
    app_requests: u64,
    disk_requests: u64,
    wnic_requests: u64,
    disk_bytes: Bytes,
    wnic_bytes: Bytes,
    flash_requests: u64,
    flash_bytes: Bytes,
    stages_done: usize,
    /// Policy decisions drained incrementally (so the recorder sees
    /// them as they happen); becomes `SimReport::decisions`.
    decisions: Vec<(SimTime, Source, &'static str)>,
}

impl<'t, 'r> Runner<'t, 'r> {
    fn new(
        cfg: SimConfig,
        trace: &'t Trace,
        policy: Box<dyn Policy>,
        recorder: &'r mut dyn Recorder,
    ) -> Self {
        let tracing = recorder.enabled();
        let layout = DiskLayout::build(&trace.files, cfg.layout_seed);
        let mut disk_params = cfg.disk.clone();
        if let Some(timeout) = policy.disk_timeout_override() {
            disk_params.timeout = timeout;
        }
        let mut disk = if cfg.disk_starts_standby {
            DiskModel::new_standby(disk_params)
        } else {
            DiskModel::new(disk_params)
        };
        let mut wnic = WnicModel::new(cfg.wnic.clone());
        let mut flash = cfg
            .flash
            .as_ref()
            .map(|(p, pages)| (FlashModel::new(p.clone()), FlashCache::new(*pages)));
        if cfg.record_power_log {
            disk.enable_power_log();
            wnic.enable_power_log();
            if let Some((f, _)) = &mut flash {
                f.enable_power_log();
            }
        }
        if tracing {
            disk.enable_state_log();
            wnic.enable_state_log();
            if let Some((f, _)) = &mut flash {
                f.enable_state_log();
            }
        }
        let cache = BufferCache::new(cfg.cache.clone());

        // Build per-process-group closed-loop queues with
        // device-independent think times: gap from a call's completion to
        // the group's next call. A group is one program (§2.1) — make and
        // its gcc children serialise; independent programs (xmms vs make)
        // interleave as separate loops.
        let mut queues: BTreeMap<u32, std::collections::VecDeque<(usize, Dur)>> = BTreeMap::new();
        let mut by_pid: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, r) in trace.records.iter().enumerate() {
            by_pid.entry(r.pgid).or_default().push(i);
        }
        for (pid, idxs) in &by_pid {
            let mut q = std::collections::VecDeque::with_capacity(idxs.len());
            for w in 0..idxs.len() {
                let rec = &trace.records[idxs[w]];
                let think = if w + 1 < idxs.len() {
                    trace.records[idxs[w + 1]].ts.saturating_since(rec.end())
                } else {
                    Dur::ZERO
                };
                q.push_back((idxs[w], think));
            }
            queues.insert(*pid, q);
        }

        let remaining_calls = trace.records.len();
        let stage_len = cfg.stage_len;
        let flush_interval = cfg.cache.writeback.wakeup_interval;
        let mut runner = Runner {
            cfg,
            trace,
            policy,
            recorder,
            tracing,
            disk,
            wnic,
            flash,
            cache,
            layout,
            queues,
            events: BinaryHeap::new(),
            seq: 0,
            remaining_calls,
            fault_actions: Vec::new(),
            link_down_until: None,
            server_path: ServerPath::new(),
            fade_restore: Vec::new(),
            faults_injected: 0,
            fault_retries: 0,
            fault_failovers: 0,
            observed: OnlineBurstBuilder::new(BurstExtractor::default()),
            stage_index: 0,
            stage_start: SimTime::ZERO,
            disk_mark: Joules::ZERO,
            wnic_mark: Joules::ZERO,
            stage_summaries: Vec::new(),
            stage_bytes_mark: Bytes::ZERO,
            last_completion: SimTime::ZERO,
            app_requests: 0,
            disk_requests: 0,
            wnic_requests: 0,
            disk_bytes: Bytes::ZERO,
            wnic_bytes: Bytes::ZERO,
            flash_requests: 0,
            flash_bytes: Bytes::ZERO,
            stages_done: 0,
            decisions: Vec::new(),
        };
        if runner.tracing {
            runner.recorder.record(&ObsEvent::StageStart {
                at: SimTime::ZERO,
                index: 0,
            });
        }
        // Fault actions first: at equal timestamps a fault applies
        // before the request it should affect (an outage starting at t
        // covers a call issued at t, exactly like a static outage
        // window, whose containment check is `now >= start`).
        runner.fault_actions = expand_faults(&runner.cfg.faults);
        for i in 0..runner.fault_actions.len() {
            let at = runner.fault_actions[i].0;
            runner.push_event(SimTime::ZERO + at, EventKind::Fault(i));
        }
        // Seed events: each pid's first call at its recorded start time,
        // plus the flusher and the first stage boundary.
        let firsts: Vec<(u32, SimTime)> = runner
            .queues
            .iter()
            .filter_map(|(&pid, q)| q.front().map(|&(idx, _)| (pid, trace.records[idx].ts)))
            .collect();
        for (pid, t) in firsts {
            runner.push_event(t, EventKind::Issue(pid));
        }
        runner.push_event(SimTime::ZERO + flush_interval, EventKind::Flush);
        runner.push_event(SimTime::ZERO + stage_len, EventKind::StageEnd);
        let changes: Vec<(usize, Dur)> = runner
            .cfg
            .wnic_bandwidth_schedule
            .iter()
            .enumerate()
            .map(|(i, &(at, _))| (i, at))
            .collect();
        for (i, at) in changes {
            runner.push_event(SimTime::ZERO + at, EventKind::WnicChange(i));
        }
        runner
    }

    fn push_event(&mut self, t: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse((t, self.seq, kind)));
    }

    /// Is the wireless link down at `now` — either inside a configured
    /// outage window or while an injected [`Fault::LinkOutage`] is
    /// active?
    fn wnic_out(&self, now: SimTime) -> bool {
        self.link_down_until.is_some_and(|u| now < u)
            || self
                .cfg
                .wnic_outages
                .iter()
                .any(|&(s, e)| now >= SimTime::ZERO + s && now < SimTime::ZERO + e)
    }

    /// Latest end of all outage windows (configured or injected) active
    /// at `now` — when a stalled network-only request can resume.
    fn wnic_resume(&self, now: SimTime) -> Option<SimTime> {
        let static_end = self
            .cfg
            .wnic_outages
            .iter()
            .filter(|&&(s, e)| now >= SimTime::ZERO + s && now < SimTime::ZERO + e)
            .map(|&(_, e)| SimTime::ZERO + e)
            .max();
        let fault_end = self.link_down_until.filter(|&u| now < u);
        static_end.into_iter().chain(fault_end).max()
    }

    /// Record one observability event (no-op unless a recorder is
    /// attached — call sites guard with `self.tracing` so disabled runs
    /// never construct events).
    fn emit(&mut self, ev: ObsEvent) {
        self.recorder.record(&ev);
    }

    /// Forward the devices' timestamped state changes to the recorder.
    /// Called after each discrete event; each device's changes arrive
    /// in its own chronological order (the log output sorts by time).
    fn drain_device_events(&mut self) {
        if !self.tracing {
            return;
        }
        for (device, changes) in [
            (Device::Disk, self.disk.take_state_changes()),
            (Device::Wnic, self.wnic.take_state_changes()),
            (
                Device::Flash,
                self.flash
                    .as_mut()
                    .map(|(f, _)| f.take_state_changes())
                    .unwrap_or_default(),
            ),
        ] {
            for c in changes {
                let ev = if c.transition {
                    ObsEvent::DeviceTransition {
                        at: c.at,
                        device,
                        name: c.state,
                        energy: c.energy,
                    }
                } else {
                    ObsEvent::DeviceState {
                        at: c.at,
                        device,
                        state: c.state,
                    }
                };
                self.emit(ev);
            }
        }
    }

    /// Forward the server-path machine's transition log to the
    /// recorder — the trace export hook that makes the retry/failover
    /// state visible to the observability layer (and to the static↔
    /// dynamic conformance check downstream). Always drains, so the
    /// log never accumulates in untraced runs.
    fn drain_server_path(&mut self) {
        let changes = self.server_path.take_changes();
        if !self.tracing {
            return;
        }
        for (at, state) in changes {
            self.emit(ObsEvent::ServerPathChange { at, state });
        }
    }

    /// Drain the policy's decision history into `self.decisions`,
    /// surfacing each fresh entry as an adaptation event. Draining
    /// incrementally (rather than once at the end) changes nothing in
    /// the report: the concatenation of drains *is* the full log.
    fn drain_decisions(&mut self) {
        let fresh = self.policy.take_decision_log();
        if self.tracing {
            for &(at, source, trigger) in &fresh {
                self.emit(ObsEvent::Adaptation {
                    at,
                    source,
                    trigger,
                });
            }
        }
        self.decisions.extend(fresh);
    }

    /// Tell the policy the environment changed, then surface any
    /// decisions it took in response.
    fn policy_fault(&mut self, now: SimTime, notice: FaultNotice) {
        {
            let Runner {
                policy,
                disk,
                wnic,
                layout,
                cache,
                ..
            } = self;
            let resident = |f: FileId, o: u64, l: Bytes| cache.resident_fraction(f, o, l);
            let ctx = PolicyCtx {
                now,
                disk,
                wnic,
                layout,
                resident: &resident,
            };
            policy.on_fault(&ctx, notice);
        }
        self.drain_decisions();
    }

    /// Apply one expanded fault action. State restores (link/server
    /// back up, fade ending) always take effect so the run can never end
    /// wedged in a fault; onsets are skipped once the workload has
    /// drained (`remaining_calls == 0`) — they could no longer affect
    /// anything and would only stretch device idle time.
    fn apply_fault(&mut self, t: SimTime, idx: usize) {
        let (_, action) = self.fault_actions[idx];
        let live = self.remaining_calls > 0;
        match action {
            FaultAction::LinkDown { until } => {
                if !live {
                    return;
                }
                self.wnic.advance_to(t);
                // Overlapping outages merge to the furthest end.
                self.link_down_until = Some(self.link_down_until.map_or(until, |u| u.max(until)));
                self.faults_injected += 1;
                if self.tracing {
                    self.emit(ObsEvent::LinkDown { at: t, until });
                }
                self.policy_fault(t, FaultNotice::LinkDown);
            }
            FaultAction::LinkUp => {
                // Only the clear matching the merged window end lifts the
                // outage (earlier clears of overlapped outages are moot).
                if self.link_down_until.is_none_or(|u| t < u) {
                    return;
                }
                self.link_down_until = None;
                if !live {
                    return;
                }
                self.wnic.advance_to(t);
                if self.tracing {
                    self.emit(ObsEvent::LinkUp { at: t });
                }
                self.policy_fault(t, FaultNotice::LinkUp);
            }
            FaultAction::ServerDown { until } => {
                if !live {
                    return;
                }
                // Overlapping outages merge to the furthest end.
                self.server_path
                    .apply(t, ServerPathEvent::OutageStart(until));
                self.faults_injected += 1;
                if self.tracing {
                    self.emit(ObsEvent::ServerDown { at: t, until });
                }
                self.drain_server_path();
                self.policy_fault(t, FaultNotice::ServerDown);
            }
            FaultAction::ServerUp => {
                // Only the clear matching the merged window end restores
                // the server (earlier clears of overlapped outages are
                // moot); the machine rejects stale clears itself.
                if !self.server_path.apply(t, ServerPathEvent::OutageEnd) {
                    return;
                }
                self.drain_server_path();
                if !live {
                    return;
                }
                if self.tracing {
                    self.emit(ObsEvent::ServerUp { at: t });
                }
                self.policy_fault(t, FaultNotice::ServerUp);
            }
            FaultAction::FadeStart { mbps } => {
                if !live {
                    return;
                }
                self.wnic.advance_to(t);
                self.fade_restore.push(self.wnic.params().bandwidth);
                self.wnic
                    .set_bandwidth(BytesPerSec::from_mbit_per_sec(mbps));
                self.faults_injected += 1;
                if self.tracing {
                    self.emit(ObsEvent::BandwidthChange { at: t, mbps });
                }
                self.policy_fault(t, FaultNotice::BandwidthChanged { mbps });
            }
            FaultAction::FadeEnd => {
                let Some(restored) = self.fade_restore.pop() else {
                    return;
                };
                self.wnic.advance_to(t);
                self.wnic.set_bandwidth(restored);
                if !live {
                    return;
                }
                let mbps = restored.get() * 8.0 / 1e6;
                if self.tracing {
                    self.emit(ObsEvent::BandwidthChange { at: t, mbps });
                }
                self.policy_fault(t, FaultNotice::BandwidthChanged { mbps });
            }
            FaultAction::DiskTouch { bytes } => {
                if !live {
                    return;
                }
                self.faults_injected += 1;
                // The storm is a real program: the policies learn about
                // it exactly like any other external disk user, and the
                // read occupies (and is billed to) the disk.
                self.policy.on_external_disk(t);
                let _ = self.service(t, Source::Disk, DeviceRequest::read(Bytes(bytes), None));
                if self.tracing {
                    self.emit(ObsEvent::ExternalDisk {
                        at: t,
                        bytes: Bytes(bytes),
                    });
                }
            }
            FaultAction::InjectProfile { mode } => {
                if !live {
                    return;
                }
                self.faults_injected += 1;
                let profile = crate::faults::injected_profile(mode, self.trace);
                {
                    let Runner {
                        policy,
                        disk,
                        wnic,
                        layout,
                        cache,
                        ..
                    } = self;
                    let resident = |f: FileId, o: u64, l: Bytes| cache.resident_fraction(f, o, l);
                    let ctx = PolicyCtx {
                        now: t,
                        disk,
                        wnic,
                        layout,
                        resident: &resident,
                    };
                    policy.inject_profile(&ctx, profile);
                }
                self.drain_decisions();
                if self.tracing {
                    self.emit(ObsEvent::ProfileInjected {
                        at: t,
                        mode: mode.label(),
                    });
                }
            }
        }
    }

    /// Gate a WNIC-bound request through an active server outage: walk
    /// the retry ladder (timeout → exponential backoff), and either
    /// catch the server coming back, fail over to the disk (hoarded
    /// data), or stall until the outage ends (network-only data).
    /// Returns the time the request can actually be serviced and the
    /// source that will serve it.
    fn wnic_gate(&mut self, t: SimTime, hoarded: bool) -> (SimTime, Source) {
        let Some(down_until) = self.server_path.outage_until(t) else {
            return (t, Source::Wnic);
        };
        // An earlier request already exhausted the ladder: hoarded data
        // fails over immediately (the client remembers the server is
        // dead until it answers again).
        if hoarded && self.server_path.dead_for(t) {
            self.fault_failovers += 1;
            return (t, Source::Disk);
        }
        let retry = self.cfg.retry;
        let mut cur = t;
        for attempt in 1..=retry.max_retries {
            // The request sits on the wire until it times out.
            cur = cur + retry.timeout;
            self.wnic.advance_to(cur);
            self.fault_retries += 1;
            let wait = retry.backoff * (1u64 << (attempt - 1).min(16));
            if self.tracing {
                self.emit(ObsEvent::RequestRetry {
                    at: cur,
                    attempt,
                    wait,
                });
            }
            if cur >= down_until {
                return (cur, Source::Wnic);
            }
            cur = cur + wait;
            self.wnic.advance_to(cur);
            if cur >= down_until {
                return (cur, Source::Wnic);
            }
        }
        self.fault_failovers += 1;
        if hoarded {
            self.server_path
                .apply(cur, ServerPathEvent::LadderExhausted);
            if self.tracing {
                self.emit(ObsEvent::Failover {
                    at: cur,
                    source: Source::Disk,
                    reason: "server-timeout",
                });
            }
            self.drain_server_path();
            (cur, Source::Disk)
        } else {
            // No local copy exists: the request can only wait the
            // outage out.
            let resume = down_until.max(cur);
            self.wnic.advance_to(resume);
            if self.tracing {
                self.emit(ObsEvent::Failover {
                    at: cur,
                    source: Source::Wnic,
                    reason: "server-stall",
                });
            }
            (resume, Source::Wnic)
        }
    }

    /// Route a request: pinned files always hit the disk and surface as
    /// external activity; non-hoarded files can only ride the WNIC;
    /// everything else asks the policy — overridden to the disk while
    /// the wireless link is down. Returns the source, whether the
    /// request is external (pinned), and a stable rationale tag for the
    /// observability layer.
    fn route(&mut self, now: SimTime, req: &AppRequest) -> (Source, bool, &'static str) {
        let routed = self.route_inner(now, req);
        if self.tracing {
            let (source, external, rationale) = routed;
            self.emit(ObsEvent::Decision {
                at: now,
                source,
                rationale,
                external,
            });
        }
        routed
    }

    fn route_inner(&mut self, now: SimTime, req: &AppRequest) -> (Source, bool, &'static str) {
        if self.cfg.disk_only_files.contains(&req.file) {
            self.policy.on_external_disk(now);
            return (Source::Disk, true, "pinned");
        }
        if self.cfg.network_only_files.contains(&req.file) {
            if self.wnic_out(now) {
                // Not hoarded AND disconnected: the request stalls until
                // the link returns — modelled as service at the outage
                // end (the disk genuinely has no copy).
                if let Some(resume) = self.wnic_resume(now) {
                    self.wnic.advance_to(resume);
                }
                return (Source::Wnic, false, "unhoarded-stall");
            }
            // Not hoarded: the local disk has no copy. The policy is not
            // consulted — there is no choice to make — but the request is
            // still the profiled program's own I/O (not external).
            return (Source::Wnic, false, "unhoarded");
        }
        if self.wnic_out(now) {
            // Link down: fail over to the disk regardless of preference.
            // The policy still observes the outcome (measured adaptation).
            return (Source::Disk, false, "outage-failover");
        }
        let Runner {
            policy,
            disk,
            wnic,
            layout,
            cache,
            ..
        } = self;
        let resident = |f: FileId, o: u64, l: Bytes| cache.resident_fraction(f, o, l);
        let ctx = PolicyCtx {
            now,
            disk,
            wnic,
            layout,
            resident: &resident,
        };
        (policy.select(&ctx, req), false, "policy")
    }

    fn notify_observe(
        &mut self,
        now: SimTime,
        req: &AppRequest,
        source: Option<Source>,
        outcome: &ServiceOutcome,
    ) {
        let Runner {
            policy,
            disk,
            wnic,
            layout,
            cache,
            ..
        } = self;
        let resident = |f: FileId, o: u64, l: Bytes| cache.resident_fraction(f, o, l);
        let ctx = PolicyCtx {
            now,
            disk,
            wnic,
            layout,
            resident: &resident,
        };
        policy.observe(&ctx, req, source, outcome);
    }

    /// Service one device request, tallying stats. Returns the outcome.
    fn service(&mut self, at: SimTime, source: Source, req: DeviceRequest) -> ServiceOutcome {
        match source {
            Source::Disk => {
                self.disk_requests += 1;
                self.disk_bytes = self.disk_bytes.saturating_add(req.bytes);
                self.disk.service(at, &req)
            }
            Source::Wnic => {
                self.wnic_requests += 1;
                self.wnic_bytes = self.wnic_bytes.saturating_add(req.bytes);
                self.wnic.service(at, &req)
            }
        }
    }

    /// Fetch a set of page runs of `file` from `source`. `blocking` runs
    /// gate the application (their max completion is returned); the rest
    /// (readahead) just occupy the device.
    fn fetch_runs(
        &mut self,
        t: SimTime,
        file: FileId,
        source: Source,
        demand: &[(u64, u64)],
        prefetch: &[(u64, u64)],
    ) -> (SimTime, Joules) {
        // A WNIC-bound fetch first clears the server: during an injected
        // server outage it walks the retry ladder and may fail over to
        // the disk (hoarded files) or stall (network-only files).
        let (t, source) = if source == Source::Wnic && !(demand.is_empty() && prefetch.is_empty()) {
            let hoarded = !self.cfg.network_only_files.contains(&file);
            self.wnic_gate(t, hoarded)
        } else {
            (t, source)
        };
        let mut app_done = t;
        let mut energy = Joules::ZERO;

        // Flash tier: pages resident in flash are served there; the rest
        // go to the routed device and are then copied into flash.
        let (demand, prefetch) = if self.flash.is_some() {
            let (hit_d, miss_d) = self.partition_flash(file, demand);
            let (_, miss_p) = self.partition_flash(file, prefetch);
            // Serve flash hits (blocking for the application).
            let mut cur = t;
            for &(page, n) in &hit_d {
                let _ = page;
                let req = DeviceRequest::read(Bytes(n * PAGE_SIZE), None);
                if let Some((f, _)) = self.flash.as_mut() {
                    let out = f.service(cur, &req);
                    cur = out.complete;
                    energy += out.energy;
                    self.flash_requests += 1;
                    self.flash_bytes = self.flash_bytes.saturating_add(req.bytes);
                }
            }
            app_done = app_done.max(cur);
            // Populate flash with what the device is about to fetch.
            let mut spilled = Vec::new();
            for runs in [&miss_d, &miss_p] {
                for &(page, n) in runs {
                    for pg in page..page + n {
                        if let Some((_, fc)) = self.flash.as_mut() {
                            spilled.extend(fc.insert_clean(PageKey { file, index: pg }));
                        }
                    }
                }
            }
            // Dirty pages squeezed out of flash must reach the disk now.
            if !spilled.is_empty() {
                let (d, e) = self.write_pages_to_disk(cur, &spilled);
                let _ = d;
                energy += e;
            }
            (hit_keep(miss_d), hit_keep(miss_p))
        } else {
            (demand.to_vec(), prefetch.to_vec())
        };
        let (demand, prefetch) = (&demand[..], &prefetch[..]);
        match source {
            Source::Disk => {
                // C-SCAN over the combined batch; tag 1 = demand.
                let mut q = CScanQueue::new();
                for &(page, n) in demand {
                    if let Some(start) = self.layout.block_of(file, page * PAGE_SIZE) {
                        q.push(BlockRequest {
                            start,
                            blocks: n,
                            tag: 1,
                        });
                    }
                }
                for &(page, n) in prefetch {
                    if let Some(start) = self.layout.block_of(file, page * PAGE_SIZE) {
                        q.push(BlockRequest {
                            start,
                            blocks: n,
                            tag: 0,
                        });
                    }
                }
                let mut cur = t;
                for r in q.drain_sweep() {
                    let req = DeviceRequest::read(Bytes(r.blocks * PAGE_SIZE), Some(r.start));
                    let out = self.service(cur, Source::Disk, req);
                    cur = out.complete;
                    energy += out.energy;
                    if r.tag == 1 {
                        app_done = app_done.max(out.complete);
                    }
                }
            }
            Source::Wnic => {
                let mut cur = t;
                for &(_page, n) in demand {
                    let req = DeviceRequest::read(Bytes(n * PAGE_SIZE), None);
                    let out = self.service(cur, Source::Wnic, req);
                    cur = out.complete;
                    energy += out.energy;
                    app_done = app_done.max(out.complete);
                }
                for &(page, n) in prefetch {
                    let _ = page;
                    let req = DeviceRequest::read(Bytes(n * PAGE_SIZE), None);
                    let out = self.service(cur, Source::Wnic, req);
                    cur = out.complete;
                    energy += out.energy;
                }
            }
        }
        (app_done, energy)
    }

    /// Split page runs of `file` by flash residency (runs stay
    /// contiguous). Flash LRU positions refresh on lookups.
    fn partition_flash(&mut self, file: FileId, runs: &[(u64, u64)]) -> (PageRuns, PageRuns) {
        let Some((_, fc)) = self.flash.as_mut() else {
            // No flash tier: everything is a miss.
            return (Vec::new(), runs.to_vec());
        };
        let mut hits: PageRuns = Vec::new();
        let mut misses: PageRuns = Vec::new();
        for &(page, n) in runs {
            for pg in page..page + n {
                let hit = fc.lookup(PageKey { file, index: pg });
                let bucket = if hit { &mut hits } else { &mut misses };
                match bucket.last_mut() {
                    Some((s, len)) if *s + *len == pg => *len += 1,
                    _ => bucket.push((pg, 1)),
                }
            }
        }
        (hits, misses)
    }

    /// Force pages to the physical disk (flash spill / destage path).
    fn write_pages_to_disk(&mut self, t: SimTime, pages: &[PageKey]) -> (SimTime, Joules) {
        let mut cur = t;
        let mut energy = Joules::ZERO;
        for (start, n) in page_runs(pages) {
            let block = self.layout.block_of(start.file, start.index * PAGE_SIZE);
            let req = DeviceRequest::write(Bytes(n * PAGE_SIZE), block);
            let out = self.service(cur, Source::Disk, req);
            cur = out.complete;
            energy += out.energy;
        }
        (cur, energy)
    }

    /// Write evicted-dirty pages out synchronously (they gate the
    /// operation that forced the eviction).
    fn write_dirty(&mut self, t: SimTime, pages: &[PageKey], source: Source) -> (SimTime, Joules) {
        let mut cur = t;
        let mut energy = Joules::ZERO;
        for run in page_runs(pages) {
            let block = self.layout.block_of(run.0.file, run.0.index * PAGE_SIZE);
            let src = if self.cfg.disk_only_files.contains(&run.0.file) {
                Source::Disk
            } else if self.cfg.network_only_files.contains(&run.0.file) {
                Source::Wnic
            } else {
                source
            };
            // Server outage: uploads walk the same ladder as fetches.
            // After the first exhausted ladder the dead-server mark makes
            // the rest of the batch fail over without re-paying it.
            let (gated, src) = if src == Source::Wnic {
                let hoarded = !self.cfg.network_only_files.contains(&run.0.file);
                self.wnic_gate(cur, hoarded)
            } else {
                (cur, src)
            };
            cur = gated;
            let bytes = Bytes(run.1 * PAGE_SIZE);
            // Flash write buffering: a write aimed at a sleeping disk
            // parks in flash instead of forcing a spin-up.
            if src == Source::Disk && self.flash.is_some() && !self.disk.is_ready() {
                let req = DeviceRequest::write(bytes, None);
                if let Some((f, _)) = self.flash.as_mut() {
                    let out = f.service(cur, &req);
                    cur = out.complete;
                    energy += out.energy;
                    self.flash_requests += 1;
                    self.flash_bytes = self.flash_bytes.saturating_add(bytes);
                }
                let mut spilled = Vec::new();
                for pg in run.0.index..run.0.index + run.1 {
                    if let Some((_, fc)) = self.flash.as_mut() {
                        spilled.extend(fc.buffer_write(PageKey {
                            file: run.0.file,
                            index: pg,
                        }));
                    }
                }
                if !spilled.is_empty() {
                    let (d, e) = self.write_pages_to_disk(cur, &spilled);
                    cur = d;
                    energy += e;
                }
                continue;
            }
            let req = DeviceRequest::write(bytes, if src == Source::Disk { block } else { None });
            let out = self.service(cur, src, req);
            cur = out.complete;
            energy += out.energy;
            // §5 extension: synchronise local writes to the server. The
            // upload rides the WNIC asynchronously (device busy, app not
            // blocked beyond the primary write).
            if self.cfg.sync_writes && src == Source::Disk {
                let up = DeviceRequest::write(bytes, None);
                let out = self.service(cur, Source::Wnic, up);
                energy += out.energy;
            }
        }
        (cur, energy)
    }

    /// Process one application system call; returns its completion time.
    /// Fails on a record naming a file absent from the trace's file
    /// table (a malformed trace).
    fn process_call(&mut self, t: SimTime, rec: &TraceRecord) -> Result<SimTime> {
        self.app_requests += 1;
        let meta_size = self
            .trace
            .files
            .get(rec.file)
            .map(|m| m.size)
            .ok_or(ff_base::Error::UnknownFile(rec.file.0))?;
        let app_req = AppRequest {
            file: rec.file,
            op: rec.op,
            offset: rec.offset,
            len: rec.len,
        };

        if self.tracing {
            self.emit(ObsEvent::AppCall {
                at: t,
                file: rec.file.0,
                op: match rec.op {
                    IoOp::Read => "read",
                    IoOp::Write => "write",
                },
                offset: rec.offset,
                len: rec.len,
            });
        }
        let mut energy = Joules::ZERO;
        let mut done = t;
        let mut routed: Option<(Source, bool)> = None;

        match rec.op {
            IoOp::Read => {
                let out = self.cache.read(t, rec.file, rec.offset, rec.len, meta_size);
                if self.tracing {
                    self.emit(ObsEvent::CacheRead {
                        at: t,
                        file: rec.file.0,
                        hit_pages: out.hit_pages,
                        miss_pages: out.demand.iter().map(|&(_, n)| n).sum(),
                        readahead_pages: out.prefetch.iter().map(|&(_, n)| n).sum(),
                    });
                }
                if !out.demand.is_empty()
                    || !out.prefetch.is_empty()
                    || !out.evicted_dirty.is_empty()
                {
                    let (source, external, _) = self.route(t, &app_req);
                    routed = Some((source, external));
                    let (d1, e1) = self.write_dirty(t, &out.evicted_dirty, source);
                    let (d2, e2) =
                        self.fetch_runs(d1, rec.file, source, &out.demand, &out.prefetch);
                    energy += e1 + e2;
                    done = d2;
                    // Device-visible activity feeds the stage observer.
                    let fetched = out.fetch_pages() * PAGE_SIZE;
                    if fetched > 0 {
                        self.observed.observe(
                            t,
                            done,
                            rec.file,
                            IoOp::Read,
                            rec.offset,
                            Bytes(fetched),
                        );
                    }
                }
            }
            IoOp::Write => {
                // Into the page cache; the flusher pays the device cost.
                let wout = self.cache.write(t, rec.file, rec.offset, rec.len);
                if !wout.evicted_dirty.is_empty() {
                    let (source, external, _) = self.route(t, &app_req);
                    routed = Some((source, external));
                    let (d, e) = self.write_dirty(t, &wout.evicted_dirty, source);
                    energy += e;
                    done = d;
                }
            }
        }

        // Profile feedback for every non-external application call —
        // §2.1: the profile records system calls regardless of where (or
        // whether) the data was serviced.
        let external = routed
            .map(|(_, ext)| ext)
            .unwrap_or_else(|| self.cfg.disk_only_files.contains(&rec.file));
        if !external {
            let source = routed.map(|(s, _)| s);
            let outcome = ServiceOutcome {
                complete: done,
                service_time: done.saturating_since(t),
                energy,
            };
            self.notify_observe(done, &app_req, source, &outcome);
        }
        Ok(done)
    }

    /// Flusher wake-up: write back due dirty pages asynchronously, and
    /// destage flash-buffered writes while the disk is awake.
    fn flush(&mut self, now: SimTime) {
        self.disk.advance_to(now);
        let ready = self.disk.is_ready();
        if ready {
            if let Some((_, fc)) = &mut self.flash {
                let destage = fc.take_destage();
                if !destage.is_empty() {
                    let _ = self.write_pages_to_disk(now, &destage);
                }
            }
        }
        let pages = self.cache.flush_due(now, ready);
        if pages.is_empty() {
            return;
        }
        if self.tracing {
            self.emit(ObsEvent::WritebackFlush {
                at: now,
                pages: u64::try_from(pages.len()).unwrap_or(u64::MAX),
            });
        }
        // Route the batch: pinned files to the disk, the rest wherever
        // the policy currently points writes.
        let probe = AppRequest {
            file: pages[0].file,
            op: IoOp::Write,
            offset: pages[0].index * PAGE_SIZE,
            len: Bytes(PAGE_SIZE),
        };
        let (source, _, _) = self.route(now, &probe);
        let _ = self.write_dirty(now, &pages, source);
    }

    fn end_stage(&mut self, now: SimTime) {
        self.disk.advance_to(now);
        self.wnic.advance_to(now);
        // A burst spanning the boundary is split so the stage's audit
        // sees the traffic that actually happened during the stage.
        self.observed.split_now();
        let report = ff_policy::StageReport {
            index: self.stage_index,
            start: self.stage_start,
            end: now,
            observed: self.observed.take_completed(),
            disk_energy: self.disk.energy() - self.disk_mark,
            wnic_energy: self.wnic.energy() - self.wnic_mark,
        };
        {
            let Runner {
                policy,
                disk,
                wnic,
                layout,
                cache,
                ..
            } = self;
            let resident = |f: FileId, o: u64, l: Bytes| cache.resident_fraction(f, o, l);
            let ctx = PolicyCtx {
                now,
                disk,
                wnic,
                layout,
                resident: &resident,
            };
            policy.on_stage_end(&ctx, &report);
        }
        let fetched_now = self.disk_bytes.saturating_add(self.wnic_bytes);
        let fetched = fetched_now.saturating_sub(self.stage_bytes_mark);
        self.stage_summaries.push(crate::report::StageSummary {
            index: self.stage_index,
            start: self.stage_start,
            end: now,
            disk_energy: report.disk_energy,
            wnic_energy: report.wnic_energy,
            fetched,
        });
        self.drain_decisions();
        if self.tracing {
            self.emit(ObsEvent::StageEnd {
                at: now,
                index: self.stage_index,
                disk_energy: report.disk_energy,
                wnic_energy: report.wnic_energy,
                fetched,
            });
            self.emit(ObsEvent::EnergySample {
                at: now,
                disk_energy: self.disk.energy(),
                wnic_energy: self.wnic.energy(),
                flash_energy: self
                    .flash
                    .as_ref()
                    .map(|(f, _)| f.energy())
                    .unwrap_or(Joules::ZERO),
            });
            self.emit(ObsEvent::StageStart {
                at: now,
                index: self.stage_index + 1,
            });
        }
        self.stage_bytes_mark = fetched_now;
        self.stage_index += 1;
        self.stages_done += 1;
        self.stage_start = now;
        self.disk_mark = self.disk.energy();
        self.wnic_mark = self.wnic.energy();
    }

    fn run(mut self) -> Result<SimReport> {
        while let Some(Reverse((t, _, kind))) = self.events.pop() {
            match kind {
                EventKind::Issue(pid) => {
                    let Some((idx, think)) = self.queues.get_mut(&pid).and_then(|q| q.pop_front())
                    else {
                        debug_assert!(false, "issue event without queued record");
                        continue;
                    };
                    let rec = &self.trace.records[idx];
                    let done = self.process_call(t, &rec.clone())?;
                    self.last_completion = self.last_completion.max(done);
                    self.remaining_calls -= 1;
                    if self
                        .queues
                        .get(&pid)
                        .map(|q| !q.is_empty())
                        .unwrap_or(false)
                    {
                        self.push_event(done + think, EventKind::Issue(pid));
                    }
                }
                EventKind::Flush => {
                    self.flush(t);
                    if self.remaining_calls > 0 {
                        self.push_event(
                            t + self.cfg.cache.writeback.wakeup_interval,
                            EventKind::Flush,
                        );
                    }
                }
                EventKind::StageEnd => {
                    self.end_stage(t);
                    if self.remaining_calls > 0 {
                        self.push_event(t + self.cfg.stage_len, EventKind::StageEnd);
                    }
                }
                EventKind::WnicChange(i) => {
                    let (_, mbps) = self.cfg.wnic_bandwidth_schedule[i];
                    self.wnic.advance_to(t);
                    self.wnic
                        .set_bandwidth(ff_base::BytesPerSec::from_mbit_per_sec(mbps));
                    // Recorded for observability, but the policy is NOT
                    // notified: scheduled drift (the user walking around)
                    // is discovered by the §2.3.1 stage-end audit, unlike
                    // injected fades which push a FaultNotice.
                    if self.tracing {
                        self.emit(ObsEvent::BandwidthChange { at: t, mbps });
                    }
                }
                EventKind::Fault(i) => {
                    self.apply_fault(t, i);
                }
            }
            self.drain_device_events();
        }

        // Final sync: everything still dirty is written out, then both
        // devices are advanced to the end of the run.
        let end = self.last_completion;
        let dirty = self.cache.flush_all();
        if !dirty.is_empty() {
            if self.tracing {
                self.emit(ObsEvent::WritebackFlush {
                    at: end,
                    pages: u64::try_from(dirty.len()).unwrap_or(u64::MAX),
                });
            }
            let probe = AppRequest {
                file: dirty[0].file,
                op: IoOp::Write,
                offset: dirty[0].index * PAGE_SIZE,
                len: Bytes(PAGE_SIZE),
            };
            let (source, _, _) = self.route(end, &probe);
            let _ = self.write_dirty(end, &dirty, source);
        }
        // Final destage of any flash-buffered writes.
        if let Some((_, fc)) = &mut self.flash {
            let destage = fc.take_destage();
            if !destage.is_empty() {
                let _ = self.write_pages_to_disk(end, &destage);
            }
        }
        let final_t = end.max(self.disk.clock()).max(self.wnic.clock()).max(
            self.flash
                .as_ref()
                .map(|(f, _)| f.clock())
                .unwrap_or(SimTime::ZERO),
        );
        self.disk.advance_to(final_t);
        self.wnic.advance_to(final_t);
        if let Some((f, _)) = &mut self.flash {
            f.advance_to(final_t);
        }
        self.drain_device_events();
        self.drain_decisions();
        if self.tracing {
            self.emit(ObsEvent::EnergySample {
                at: final_t,
                disk_energy: self.disk.energy(),
                wnic_energy: self.wnic.energy(),
                flash_energy: self
                    .flash
                    .as_ref()
                    .map(|(f, _)| f.energy())
                    .unwrap_or(Joules::ZERO),
            });
        }

        let (hits, misses) = self.cache.hit_stats();
        Ok(SimReport {
            policy: self.policy.name().to_string(),
            workload: self.trace.name.clone(),
            exec_time: self.last_completion.saturating_since(SimTime::ZERO),
            disk_energy: self.disk.energy(),
            wnic_energy: self.wnic.energy(),
            disk_meter: self.disk.meter().clone(),
            wnic_meter: self.wnic.meter().clone(),
            app_requests: self.app_requests,
            disk_requests: self.disk_requests,
            wnic_requests: self.wnic_requests,
            disk_bytes: self.disk_bytes,
            wnic_bytes: self.wnic_bytes,
            flash_energy: self
                .flash
                .as_ref()
                .map(|(f, _)| f.energy())
                .unwrap_or(Joules::ZERO),
            flash_meter: self.flash.as_ref().map(|(f, _)| f.meter().clone()),
            flash_requests: self.flash_requests,
            flash_bytes: self.flash_bytes,
            cache_hits: hits,
            cache_misses: misses,
            cache_stats: self.cache.stats(),
            stages: self.stages_done,
            faults_injected: self.faults_injected,
            retries: self.fault_retries,
            failovers: self.fault_failovers,
            recorded_profile: self.policy.recorded_profile(),
            decisions: self.decisions,
            stage_summaries: self.stage_summaries,
        })
    }
}

/// Identity helper naming the flash-miss runs that continue to the
/// routed device.
fn hit_keep(runs: PageRuns) -> PageRuns {
    runs
}

/// Group sorted page keys into per-file contiguous runs.
fn page_runs(pages: &[PageKey]) -> Vec<(PageKey, u64)> {
    let mut sorted: Vec<PageKey> = pages.to_vec();
    sorted.sort();
    let mut runs: Vec<(PageKey, u64)> = Vec::new();
    for p in sorted {
        match runs.last_mut() {
            Some((start, n)) if start.file == p.file && start.index + *n == p.index => {
                *n += 1;
            }
            _ => runs.push((p, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_trace::{Grep, Workload};

    fn grep_small() -> Trace {
        Grep {
            files: 40,
            total_bytes: 4_000_000,
            ..Default::default()
        }
        .build(7)
    }

    #[test]
    fn page_runs_group_contiguous() {
        let f = FileId(1);
        let pages = vec![
            PageKey { file: f, index: 3 },
            PageKey { file: f, index: 1 },
            PageKey { file: f, index: 2 },
            PageKey {
                file: FileId(2),
                index: 4,
            },
        ];
        let runs = page_runs(&pages);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], (PageKey { file: f, index: 1 }, 3));
        assert_eq!(
            runs[1],
            (
                PageKey {
                    file: FileId(2),
                    index: 4
                },
                1
            )
        );
    }

    #[test]
    fn disk_only_run_completes() {
        let trace = grep_small();
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert!(report.total_energy().get() > 0.0);
        assert_eq!(
            report.wnic_requests, 0,
            "Disk-only must never touch the WNIC"
        );
        assert!(report.disk_bytes.get() >= 4_000_000, "all data fetched");
        assert_eq!(report.app_requests, trace.len() as u64);
    }

    #[test]
    fn wnic_only_run_never_reads_disk() {
        let trace = grep_small();
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(report.disk_requests, 0);
        assert!(report.wnic_bytes.get() >= 4_000_000);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = grep_small();
        let a = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::BlueFs)
            .run()
            .unwrap();
        let b = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::BlueFs)
            .run()
            .unwrap();
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.disk_requests, b.disk_requests);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let trace = Trace::new("empty");
        assert!(Simulation::new(SimConfig::default(), &trace).run().is_err());
    }

    #[test]
    fn cache_absorbs_rereads() {
        // Read the same small file set twice: second pass must be hits.
        let t1 = grep_small();
        let t2 = grep_small();
        let both = t1.concat(&t2, Dur::from_secs(1)).unwrap();
        let report = Simulation::new(SimConfig::default(), &both)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert!(
            report.hit_ratio() > 0.4,
            "second pass should hit the cache, ratio {}",
            report.hit_ratio()
        );
        // Device traffic well below two full passes.
        assert!(report.disk_bytes.get() < 4_000_000 * 3 / 2);
    }

    #[test]
    fn wnic_only_disk_spins_down_and_stays_down() {
        let trace = grep_small();
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        // The unused disk spins down exactly once (if the run outlasts the
        // 20 s timeout) and never back up.
        assert_eq!(report.disk_meter.transition_count("spin_up"), 0);
        assert!(report.disk_meter.transition_count("spin_down") <= 1);
    }

    #[test]
    fn pinned_files_force_disk_despite_wnic_policy() {
        let trace = grep_small();
        let pinned: Vec<FileId> = trace.files.iter().map(|f| f.id).collect();
        let cfg = SimConfig::default().with_disk_only_files(pinned);
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(
            report.wnic_requests, 0,
            "pinned files must never ride the WNIC"
        );
        assert!(report.disk_requests > 0);
    }

    #[test]
    fn stages_are_counted() {
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(120)),
            ..Default::default()
        }
        .build(3);
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        // ~2 min run with 40 s stages → at least 2 boundaries.
        assert!(report.stages >= 2, "stages {}", report.stages);
    }

    #[test]
    fn network_only_files_force_the_wnic() {
        let trace = grep_small();
        let server_only: Vec<FileId> = trace.files.iter().map(|f| f.id).collect();
        let cfg = SimConfig::default().with_network_only_files(server_only);
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::DiskOnly) // policy wants the disk…
            .run()
            .unwrap();
        assert_eq!(
            report.disk_requests, 0,
            "non-hoarded files cannot hit the disk"
        );
        assert!(report.wnic_requests > 0);
    }

    #[test]
    fn partial_hoard_splits_traffic() {
        let trace = grep_small();
        let half: Vec<FileId> = trace
            .files
            .iter()
            .map(|f| f.id)
            .filter(|f| f.0 % 2 == 0)
            .collect();
        let cfg = SimConfig::default().with_network_only_files(half);
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert!(report.disk_requests > 0);
        assert!(report.wnic_requests > 0);
    }

    #[test]
    fn sync_writes_mirror_to_the_server() {
        use ff_trace::{Make, Workload};
        let trace = Make {
            units: 15,
            headers: 30,
            misc: 2,
            input_bytes: 1_500_000,
            ..Default::default()
        }
        .build(3);
        let plain = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        let synced = Simulation::new(SimConfig::default().with_sync_writes(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert_eq!(plain.wnic_requests, 0);
        assert!(synced.wnic_requests > 0, "sync must upload dirty pages");
        assert!(synced.total_energy() > plain.total_energy());
        // Reads are unaffected: disk fetch traffic identical.
        assert_eq!(plain.disk_bytes, synced.disk_bytes);
    }

    #[test]
    fn wnic_only_writer_pays_nothing_for_sync() {
        use ff_trace::{Make, Workload};
        let trace = Make {
            units: 10,
            headers: 20,
            misc: 2,
            input_bytes: 1_000_000,
            ..Default::default()
        }
        .build(4);
        let plain = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        let synced = Simulation::new(SimConfig::default().with_sync_writes(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        // Write-back already targets the server; sync adds no mirror.
        assert_eq!(plain.wnic_bytes, synced.wnic_bytes);
        assert_eq!(plain.total_energy(), synced.total_energy());
    }

    #[test]
    fn flash_absorbs_rereads_beyond_ram() {
        // RAM cache too small for the working set; a flash tier catches
        // the second pass instead of the device.
        let t1 = grep_small();
        let both = t1.concat(&grep_small(), Dur::from_secs(1)).unwrap();
        let tiny_ram = |flash_mb: usize| {
            let mut cfg = SimConfig::default();
            cfg.cache.capacity_pages = 128; // 512 KiB RAM
            if flash_mb > 0 {
                cfg = cfg.with_flash_mb(flash_mb);
            }
            Simulation::new(cfg, &both)
                .policy(PolicyKind::WnicOnly)
                .run()
                .unwrap()
        };
        let without = tiny_ram(0);
        let with = tiny_ram(64);
        assert!(with.flash_requests > 0, "flash never hit");
        assert!(
            with.wnic_bytes < without.wnic_bytes,
            "flash must absorb device traffic: {} vs {}",
            with.wnic_bytes,
            without.wnic_bytes
        );
        assert!(
            with.total_energy() < without.total_energy(),
            "flash must save energy here: {} vs {}",
            with.total_energy(),
            without.total_energy()
        );
    }

    #[test]
    fn flash_buffers_writes_for_a_sleeping_disk() {
        use ff_trace::{Make, Workload};
        let trace = Make {
            units: 12,
            headers: 24,
            misc: 2,
            input_bytes: 1_200_000,
            compile_think: (Dur::from_secs(25), Dur::from_secs(30)),
            ..Default::default()
        }
        .build(5);
        // Long compile gaps let the disk sleep; Disk-only writes would
        // wake it — unless flash buffers them.
        let run = |flash: bool| {
            let mut cfg = SimConfig::default();
            if flash {
                cfg = cfg.with_flash_mb(64);
            }
            Simulation::new(cfg, &trace)
                .policy(PolicyKind::DiskOnly)
                .run()
                .unwrap()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with.disk_meter.transition_count("spin_up")
                <= without.disk_meter.transition_count("spin_up"),
            "flash must not increase spin-ups"
        );
        assert!(with.flash_bytes.get() > 0);
    }

    #[test]
    fn flash_energy_is_metered_and_totalled() {
        let trace = grep_small();
        let cfg = SimConfig::default().with_flash_mb(32);
        let r = Simulation::new(cfg, &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        let meter = r.flash_meter.as_ref().expect("flash configured");
        assert!((meter.total().get() - r.flash_energy.get()).abs() < 1e-9);
        assert!(r.flash_energy.get() > 0.0, "idle draw alone is non-zero");
        assert!(
            r.total_energy().get()
                >= (r.disk_energy + r.wnic_energy).get() + r.flash_energy.get() - 1e-9
        );
    }

    #[test]
    fn stage_summaries_partition_energy() {
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(200)),
            ..Default::default()
        }
        .build(3);
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert_eq!(report.stage_summaries.len(), report.stages);
        // Stage energies sum to at most the run total (the tail after the
        // last boundary is not in any stage).
        let staged: f64 = report
            .stage_summaries
            .iter()
            .map(|s| s.total_energy().get())
            .sum();
        assert!(staged <= report.total_energy().get() + 1e-6);
        assert!(
            staged > report.total_energy().get() * 0.5,
            "stages cover most of the run"
        );
        // Contiguous, ordered stage windows.
        for w in report.stage_summaries.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_eq!(w[0].index + 1, w[1].index);
        }
    }

    #[test]
    fn outage_fails_over_to_disk() {
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(120)),
            ..Default::default()
        }
        .build(8);
        // Link down for the whole run: WNIC-only policy still ends up on
        // the disk.
        let cfg = SimConfig::default().with_wnic_outage(Dur::ZERO, Dur::from_secs(100_000));
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(report.wnic_requests, 0, "outage must block the WNIC");
        assert!(report.disk_requests > 0);
    }

    #[test]
    fn partial_outage_splits_traffic() {
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(200)),
            ..Default::default()
        }
        .build(8);
        let cfg = SimConfig::default().with_wnic_outage(Dur::from_secs(50), Dur::from_secs(150));
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert!(report.wnic_requests > 0, "link is up outside the outage");
        assert!(report.disk_requests > 0, "failover during the outage");
    }

    #[test]
    fn unhoarded_file_stalls_through_outage() {
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(60)),
            ..Default::default()
        }
        .build(8);
        let all: Vec<FileId> = trace.files.iter().map(|f| f.id).collect();
        let outage_end = Dur::from_secs(500);
        let cfg = SimConfig::default()
            .with_network_only_files(all)
            .with_wnic_outage(Dur::ZERO, outage_end);
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        assert_eq!(report.disk_requests, 0, "no local copies exist");
        // The run cannot finish before the link returns.
        assert!(report.exec_time >= outage_end, "exec {}", report.exec_time);
    }

    #[test]
    fn bandwidth_change_slows_later_transfers() {
        let trace = grep_small();
        let fast = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        // Degrade to 1 Mbps almost immediately.
        let cfg = SimConfig::default().with_bandwidth_change(Dur::from_millis(100), 1.0);
        let degraded = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert!(
            degraded.exec_time > fast.exec_time,
            "degraded link must slow the replay: {} vs {}",
            degraded.exec_time,
            fast.exec_time
        );
        assert!(degraded.total_energy() > fast.total_energy());
    }

    #[test]
    fn flexfetch_records_a_profile() {
        let trace = grep_small();
        let report = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::flexfetch(ff_profile::Profile::empty("grep")))
            .run()
            .unwrap();
        let profile = report.recorded_profile.expect("FlexFetch must record");
        assert!(!profile.is_empty());
        assert_eq!(profile.app, "grep");
    }

    #[test]
    fn injected_link_outage_fails_over_to_disk() {
        use crate::faults::FaultPlan;
        use ff_trace::Xmms;
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(120)),
            ..Default::default()
        }
        .build(8);
        let plan = FaultPlan::none().with_link_outage(Dur::ZERO, Dur::from_secs(100_000));
        let report = Simulation::new(SimConfig::default().with_faults(plan), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(report.wnic_requests, 0, "outage must block the WNIC");
        assert!(report.disk_requests > 0);
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.app_requests, trace.len() as u64);
    }

    #[test]
    fn server_outage_walks_the_retry_ladder_then_fails_over() {
        use crate::faults::{FaultPlan, RetryPolicy};
        let trace = grep_small();
        let plan = FaultPlan::none().with_server_outage(Dur::ZERO, Dur::from_secs(100_000));
        let cfg = SimConfig::default()
            .with_faults(plan)
            .with_retry(RetryPolicy {
                timeout: Dur::from_millis(200),
                backoff: Dur::from_millis(50),
                max_retries: 3,
            });
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        // The first WNIC-bound request exhausts the ladder, then the
        // dead-server mark reroutes everything else without retrying.
        assert_eq!(report.retries, 3, "one full ladder");
        assert!(report.failovers > 0);
        assert!(report.disk_requests > 0, "hoarded data fails over");
        assert_eq!(report.wnic_requests, 0, "server never answers");
        assert_eq!(report.app_requests, trace.len() as u64);
    }

    #[test]
    fn server_recovery_mid_ladder_keeps_the_wnic() {
        use crate::faults::{FaultPlan, RetryPolicy};
        let trace = grep_small();
        // A short outage: the first retry catches the server back up.
        let plan = FaultPlan::none().with_server_outage(Dur::ZERO, Dur::from_millis(100));
        let cfg = SimConfig::default()
            .with_faults(plan)
            .with_retry(RetryPolicy {
                timeout: Dur::from_secs(2),
                backoff: Dur::from_millis(500),
                max_retries: 4,
            });
        let report = Simulation::new(cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(report.failovers, 0, "recovery must beat the ladder");
        assert!(report.retries >= 1, "the first attempt still timed out");
        assert_eq!(report.disk_requests, 0);
        assert!(report.wnic_requests > 0);
    }

    #[test]
    fn disk_storm_spins_the_disk_and_counts_touches() {
        use crate::faults::FaultPlan;
        use ff_trace::Xmms;
        // A workload long enough that every storm touch lands mid-run
        // (onsets after the last app call are deliberately dropped).
        let trace = Xmms {
            play_limit: Some(Dur::from_secs(60)),
            ..Default::default()
        }
        .build(8);
        let plan =
            FaultPlan::none().with_disk_storm(Dur::from_secs(1), 6, Dur::from_secs(2), 65_536);
        let report = Simulation::new(SimConfig::default().with_faults(plan), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert_eq!(report.faults_injected, 6, "every touch lands");
        assert!(
            report.disk_requests >= 6,
            "storm reads are real disk requests"
        );
        assert!(report.disk_bytes.get() >= 6 * 65_536);
    }

    #[test]
    fn bandwidth_fade_restores_the_old_rate() {
        use crate::faults::FaultPlan;
        let trace = grep_small();
        let fade = FaultPlan::none().with_bandwidth_fade(
            Dur::from_millis(100),
            Dur::from_secs(100_000),
            0.5,
        );
        let faded = Simulation::new(SimConfig::default().with_faults(fade), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        let clean = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert!(
            faded.exec_time > clean.exec_time,
            "a 0.5 Mbps fade must slow the run: {} vs {}",
            faded.exec_time,
            clean.exec_time
        );
        // A fade that ends immediately leaves the run unchanged apart
        // from rounding: the pre-fade bandwidth is restored.
        let blip =
            FaultPlan::none().with_bandwidth_fade(Dur::from_millis(1), Dur::from_millis(2), 0.5);
        let blipped = Simulation::new(SimConfig::default().with_faults(blip), &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert!(
            blipped.exec_time < clean.exec_time + Dur::from_secs(1),
            "restored bandwidth must keep the run fast"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use crate::faults::FaultPlan;
        let trace = grep_small();
        let plan = FaultPlan::seeded(42, Dur::from_secs(120));
        let run = || {
            Simulation::new(SimConfig::default().with_faults(plan.clone()), &trace)
                .policy(PolicyKind::flexfetch(ff_profile::Profile::empty("grep")))
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.failovers, b.failovers);
        assert_eq!(a.faults_injected, b.faults_injected);
    }

    #[test]
    fn degenerate_fault_plan_is_rejected_up_front() {
        use crate::faults::FaultPlan;
        let trace = grep_small();
        let plan = FaultPlan::none().with_link_outage(Dur::ZERO, Dur::ZERO);
        let err = Simulation::new(SimConfig::default().with_faults(plan), &trace)
            .policy(PolicyKind::DiskOnly)
            .run();
        assert!(matches!(err, Err(Error::Fault(_))));
    }

    #[test]
    fn exec_time_exceeds_trace_span_when_device_is_slow() {
        let trace = grep_small();
        let fast = Simulation::new(SimConfig::default(), &trace)
            .policy(PolicyKind::DiskOnly)
            .run()
            .unwrap();
        let slow_cfg = SimConfig::default().with_wnic_bandwidth_mbps(1.0);
        let slow = Simulation::new(slow_cfg, &trace)
            .policy(PolicyKind::WnicOnly)
            .run()
            .unwrap();
        assert!(
            slow.exec_time > fast.exec_time,
            "1 Mbps WNIC replay must run longer than the disk replay"
        );
    }
}
