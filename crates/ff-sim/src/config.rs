//! Simulation configuration.

use crate::faults::{FaultPlan, RetryPolicy};
use ff_base::Dur;
use ff_cache::CacheConfig;
use ff_device::{DiskParams, FlashParams, WnicParams};
use ff_trace::FileId;
use std::collections::BTreeSet;

/// Everything that parameterises one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Disk constants (Table 1).
    pub disk: DiskParams,
    /// WNIC constants (Table 2). The §3.3 sweeps vary `latency` and
    /// `bandwidth` here.
    pub wnic: WnicParams,
    /// Buffer-cache tuning (§3.1).
    pub cache: CacheConfig,
    /// Seed for the file→block layout jitter (§3.2).
    pub layout_seed: u64,
    /// Evaluation-stage cadence (§2.2; the paper uses 40 s).
    pub stage_len: Dur,
    /// Files that exist *only* on the local disk (the §3.3.4 xmms MP3s):
    /// requests for them always hit the disk and count as external,
    /// non-profiled activity.
    pub disk_only_files: BTreeSet<FileId>,
    /// Start the run with the disk spun down. §3.3.1 confirms the paper's
    /// setup: "at the beginning FlexFetch spins up the hard disk to
    /// service the data set of grep" — a quiescent laptop parks its disk.
    pub disk_starts_standby: bool,
    /// Files *not* hoarded on the local disk (extension of the paper's
    /// §5 limitation: the paper assumes the full working set is
    /// replicated). Requests for them can only be serviced over the
    /// WNIC, whatever the policy prefers.
    pub network_only_files: BTreeSet<FileId>,
    /// Mirror write-back traffic to the remote server (extension of §5
    /// limitation 3: the paper defers synchronisation to the hoarding
    /// system). When set, every flushed dirty page is also uploaded over
    /// the WNIC, so local writes eventually reach the server.
    pub sync_writes: bool,
    /// Record chronological per-device power logs in the report's meters
    /// (memory ∝ state changes; off by default).
    pub record_power_log: bool,
    /// Scheduled WNIC bandwidth changes `(at, Mbps)` — the user walking
    /// away from (or back towards) the access point. Applied in time
    /// order; FlexFetch's re-evaluations see the new rate through its
    /// device clones (§2.3 environment adaptation).
    pub wnic_bandwidth_schedule: Vec<(Dur, f64)>,
    /// Wireless outages `(start, end)` relative to t = 0: while one is
    /// active, requests routed to the WNIC fail over to the local disk
    /// (failure injection; disconnected operation per §4 \[11\]).
    pub wnic_outages: Vec<(Dur, Dur)>,
    /// Optional flash tier (extension — §4's SmartSaver): a low-power
    /// page cache between RAM and the devices, `(params, capacity in
    /// 4 KiB pages)`. Reads hitting flash touch neither the disk nor the
    /// WNIC; writes aimed at a sleeping disk buffer in flash and destage
    /// when the disk wakes.
    pub flash: Option<(FlashParams, usize)>,
    /// Scripted fault plan (link outages, bandwidth fades, server
    /// outages, disk storms, profile injection). Empty by default —
    /// a run without faults behaves exactly as before the fault
    /// subsystem existed.
    pub faults: FaultPlan,
    /// Retry ladder applied to network requests while an injected
    /// server outage is active (timeout → exponential backoff →
    /// failover to disk).
    pub retry: RetryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            disk: DiskParams::hitachi_dk23da(),
            wnic: WnicParams::cisco_aironet350(),
            cache: CacheConfig::default(),
            layout_seed: 0x5EED,
            stage_len: Dur::from_secs(40),
            disk_only_files: BTreeSet::new(),
            disk_starts_standby: true,
            network_only_files: BTreeSet::new(),
            sync_writes: false,
            record_power_log: false,
            wnic_bandwidth_schedule: Vec::new(),
            wnic_outages: Vec::new(),
            flash: None,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }
}

impl SimConfig {
    /// Sweep helper: same config with a different WNIC latency.
    pub fn with_wnic_latency(mut self, latency: Dur) -> Self {
        self.wnic.latency = latency;
        self
    }

    /// Sweep helper: same config with a different WNIC bandwidth (Mbps).
    pub fn with_wnic_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.wnic.bandwidth = ff_base::BytesPerSec::from_mbit_per_sec(mbps);
        self
    }

    /// Pin a set of files to the local disk (§3.3.4).
    pub fn with_disk_only_files(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.disk_only_files.extend(files);
        self
    }

    /// Mark files as not hoarded locally: they are only reachable over
    /// the WNIC.
    pub fn with_network_only_files(mut self, files: impl IntoIterator<Item = FileId>) -> Self {
        self.network_only_files.extend(files);
        self
    }

    /// Enable write synchronisation to the remote server.
    pub fn with_sync_writes(mut self) -> Self {
        self.sync_writes = true;
        self
    }

    /// Schedule a bandwidth change at `at` after simulation start.
    pub fn with_bandwidth_change(mut self, at: Dur, mbps: f64) -> Self {
        self.wnic_bandwidth_schedule.push((at, mbps));
        self.wnic_bandwidth_schedule.sort_by_key(|&(t, _)| t);
        self
    }

    /// Inject a wireless outage.
    pub fn with_wnic_outage(mut self, start: Dur, end: Dur) -> Self {
        assert!(start < end, "outage must have positive length");
        self.wnic_outages.push((start, end));
        self.wnic_outages.sort_by_key(|&(s, _)| s);
        self
    }

    /// Attach a scripted fault plan (replaces any existing one).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Override the server-outage retry ladder.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a flash tier of `capacity_mb` megabytes.
    pub fn with_flash_mb(mut self, capacity_mb: usize) -> Self {
        self.flash = Some((
            FlashParams::compact_flash_2007(),
            capacity_mb * 1_000_000 / 4096,
        ));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SimConfig::default();
        assert_eq!(c.stage_len, Dur::from_secs(40));
        assert_eq!(c.disk.timeout, Dur::from_secs(20));
        assert_eq!(c.wnic.psm_timeout, Dur::from_millis(800));
        assert!(c.disk_only_files.is_empty());
        assert!(c.network_only_files.is_empty());
        assert!(!c.sync_writes);
        assert!(c.faults.is_empty(), "no faults unless scripted");
        assert_eq!(c.retry, RetryPolicy::default());
    }

    #[test]
    fn fault_builders_apply() {
        let plan = FaultPlan::none().with_link_outage(Dur::from_secs(5), Dur::from_secs(2));
        let retry = RetryPolicy {
            timeout: Dur::from_secs(1),
            backoff: Dur::from_millis(100),
            max_retries: 2,
        };
        let c = SimConfig::default()
            .with_faults(plan.clone())
            .with_retry(retry);
        assert_eq!(c.faults, plan);
        assert_eq!(c.retry, retry);
    }

    #[test]
    fn sweep_helpers_apply() {
        let c = SimConfig::default()
            .with_wnic_latency(Dur::from_millis(15))
            .with_wnic_bandwidth_mbps(2.0)
            .with_disk_only_files([FileId(7)]);
        assert_eq!(c.wnic.latency, Dur::from_millis(15));
        assert!((c.wnic.bandwidth.get() - 250_000.0).abs() < 1.0);
        assert!(c.disk_only_files.contains(&FileId(7)));
        let c = SimConfig::default()
            .with_network_only_files([FileId(9)])
            .with_sync_writes();
        assert!(c.network_only_files.contains(&FileId(9)));
        assert!(c.sync_writes);
    }
}
