//! Structured event tracing — the observability layer.
//!
//! The paper's evaluation (§3) is about *explaining* energy outcomes:
//! which source each stage picked and why, when the disk spun up, what
//! the cache absorbed. This module makes every one of those mechanisms
//! inspectable. A [`Recorder`] attached via
//! [`Simulation::run_recorded`](crate::Simulation::run_recorded)
//! receives typed [`Event`]s with simulated timestamps as the replay
//! progresses; three implementations cover the common needs:
//!
//! * [`NullRecorder`] — discards everything; [`Recorder::enabled`]
//!   returns `false`, so the simulator skips event construction
//!   entirely (the zero-cost-when-disabled path).
//! * [`CountingRecorder`] — per-kind counters only, O(1) memory; the
//!   benchmark runner uses it to measure event throughput.
//! * [`EventLog`] — keeps every event and serialises to JSONL for the
//!   `observe` binary and the golden-trace tests.
//!
//! Attaching any recorder (null or not) never changes simulation
//! results: the replay path is identical, only observation differs.
//!
//! ```
//! use ff_policy::PolicyKind;
//! use ff_sim::{EventLog, SimConfig, Simulation};
//! use ff_trace::{Grep, Workload};
//!
//! let trace = Grep { files: 8, total_bytes: 400_000, ..Default::default() }.build(42);
//! let mut log = EventLog::new();
//! let report = Simulation::new(SimConfig::default(), &trace)
//!     .policy(PolicyKind::DiskOnly)
//!     .run_recorded(&mut log)
//!     .unwrap();
//! assert!(report.total_energy().get() > 0.0);
//! // Every application call surfaced as an event…
//! assert_eq!(log.count("app_call"), report.app_requests);
//! // …and the log serialises to one JSON object per line.
//! let jsonl = log.to_jsonl();
//! assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
//! ```

use ff_base::{json::Value, Bytes, Dur, Joules, SimTime};
use ff_policy::Source;
use std::collections::BTreeMap;

/// Which simulated device an [`Event::DeviceState`] /
/// [`Event::DeviceTransition`] refers to.
///
/// ```
/// use ff_sim::record::Device;
/// assert_eq!(Device::Disk.label(), "disk");
/// assert_eq!(Device::Wnic.label(), "wnic");
/// assert_eq!(Device::Flash.label(), "flash");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// The hard disk (Hitachi DK23DA model).
    Disk,
    /// The wireless NIC (Cisco Aironet 350 model).
    Wnic,
    /// The optional flash tier.
    Flash,
}

impl Device {
    /// Stable lowercase name used in the JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            Device::Disk => "disk",
            Device::Wnic => "wnic",
            Device::Flash => "flash",
        }
    }
}

/// One typed, simulated-timestamped observation from the replay engine.
///
/// Every variant carries `at`, the simulated instant it happened; the
/// JSONL encoding ([`Event::to_json`]) puts that first as `t`
/// (microseconds) followed by `ev` (the [`Event::kind`] tag) and the
/// variant's fields.
///
/// ```
/// use ff_base::SimTime;
/// use ff_sim::record::Event;
///
/// let ev = Event::StageStart { at: SimTime::from_secs(40), index: 1 };
/// assert_eq!(ev.kind(), "stage_start");
/// assert_eq!(
///     ev.to_json().to_compact(),
///     r#"{"t":40000000,"ev":"stage_start","stage":1}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An evaluation stage (§2.2, 40 s cadence) began.
    StageStart {
        /// When the stage began.
        at: SimTime,
        /// Stage ordinal (0-based).
        index: usize,
    },
    /// An evaluation stage closed; carries the stage's energy split and
    /// device-visible fetch volume (the §2.3.1 audit inputs).
    StageEnd {
        /// When the stage closed.
        at: SimTime,
        /// Stage ordinal (0-based).
        index: usize,
        /// Disk energy drawn during the stage.
        disk_energy: Joules,
        /// WNIC energy drawn during the stage.
        wnic_energy: Joules,
        /// Device bytes fetched during the stage.
        fetched: Bytes,
    },
    /// An application system call was issued to the replay engine.
    AppCall {
        /// Issue time.
        at: SimTime,
        /// File accessed (trace file-table id).
        file: u64,
        /// `"read"` or `"write"`.
        op: &'static str,
        /// Byte offset.
        offset: u64,
        /// Request length.
        len: Bytes,
    },
    /// The engine routed a device-visible request to a source, with the
    /// reason: `"policy"` (the scheme chose), `"pinned"` (§3.3.4
    /// disk-only file), `"unhoarded"` (no local copy), or
    /// `"outage-failover"` (link down, §2.3 environment change).
    Decision {
        /// Routing time.
        at: SimTime,
        /// Where the request was sent.
        source: Source,
        /// Why (stable rationale tag, see variant docs).
        rationale: &'static str,
        /// True when the request counts as external, non-profiled
        /// activity (pinned files).
        external: bool,
    },
    /// A device entered a power state (`active`, `standby`,
    /// `cam_idle`, …) — the dwell segments behind Figure 4.
    DeviceState {
        /// Entry time.
        at: SimTime,
        /// Which device.
        device: Device,
        /// State entered (the FSM names of DESIGN.md §9).
        state: &'static str,
    },
    /// A device fired a one-shot transition (`spin_up`, `cam_to_psm`,
    /// …) with its lump energy cost.
    DeviceTransition {
        /// Transition time.
        at: SimTime,
        /// Which device.
        device: Device,
        /// Transition name.
        name: &'static str,
        /// Lump-sum transition energy.
        energy: Joules,
    },
    /// The buffer cache classified one application read.
    CacheRead {
        /// Read time.
        at: SimTime,
        /// File accessed.
        file: u64,
        /// Demand pages found resident.
        hit_pages: u64,
        /// Demand pages that missed (device I/O required).
        miss_pages: u64,
        /// Pages fetched speculatively alongside.
        readahead_pages: u64,
    },
    /// The write-back flusher pushed a non-empty batch of dirty pages.
    WritebackFlush {
        /// Flush time.
        at: SimTime,
        /// Pages written out.
        pages: u64,
    },
    /// The policy logged a source (re-)decision — FlexFetch's §2.3.1
    /// adaptation triggers (`initial:profile`, `audit:flip`, …).
    Adaptation {
        /// Decision time (as logged by the policy).
        at: SimTime,
        /// The source decided on.
        source: Source,
        /// The policy's trigger tag.
        trigger: &'static str,
    },
    /// Cumulative energy snapshot, sampled at stage boundaries — the
    /// power timeline behind the figures.
    EnergySample {
        /// Sample time.
        at: SimTime,
        /// Cumulative disk energy since t = 0.
        disk_energy: Joules,
        /// Cumulative WNIC energy since t = 0.
        wnic_energy: Joules,
        /// Cumulative flash energy (zero when no flash tier).
        flash_energy: Joules,
    },
    /// Fault injection: the wireless link lost association.
    LinkDown {
        /// When the link went down.
        at: SimTime,
        /// Scheduled end of the outage.
        until: SimTime,
    },
    /// Fault injection: the wireless link re-associated.
    LinkUp {
        /// When the link came back.
        at: SimTime,
    },
    /// The WNIC link bandwidth changed mid-run — a scripted schedule
    /// point, a fade onset, or a fade ending and restoring the old rate.
    BandwidthChange {
        /// When the rate changed.
        at: SimTime,
        /// The new link bandwidth in Mbit/s.
        mbps: f64,
    },
    /// Fault injection: the remote server stopped answering.
    ServerDown {
        /// When the server went unreachable.
        at: SimTime,
        /// Scheduled end of the outage.
        until: SimTime,
    },
    /// Fault injection: the remote server answers again.
    ServerUp {
        /// When the server came back.
        at: SimTime,
    },
    /// A network request timed out against an unresponsive server and
    /// will retry after `wait` of exponential backoff.
    RequestRetry {
        /// When the attempt timed out.
        at: SimTime,
        /// Attempt ordinal (1-based).
        attempt: u32,
        /// Backoff before the next attempt.
        wait: Dur,
    },
    /// The retry ladder was exhausted; the request was rerouted.
    Failover {
        /// When the failover happened.
        at: SimTime,
        /// Where the request went instead.
        source: Source,
        /// Why (stable tag, e.g. `"server-timeout"`).
        reason: &'static str,
    },
    /// The simulator's server-path machine changed state: the retry /
    /// backoff / failover view of the remote server moved between
    /// `"healthy"`, `"down"` (an outage is active), and `"dead"` (a
    /// request exhausted the retry ladder and later hoarded requests
    /// fail over immediately).
    ServerPathChange {
        /// When the server-path state changed.
        at: SimTime,
        /// The new state label (`"healthy"`, `"down"`, `"dead"`).
        state: &'static str,
    },
    /// A background (non-profiled) process read from the disk — a
    /// [`Fault::DiskStorm`](crate::faults::Fault::DiskStorm) touch.
    ExternalDisk {
        /// When the touch happened.
        at: SimTime,
        /// Bytes read by the background process.
        bytes: Bytes,
    },
    /// Fault injection: a replacement execution profile was handed to
    /// the policy (`"stale"` or `"corrupt"`).
    ProfileInjected {
        /// Injection time.
        at: SimTime,
        /// The [`ProfileFaultMode`](crate::faults::ProfileFaultMode) tag.
        mode: &'static str,
    },
}

impl Event {
    /// The simulated instant this event happened.
    pub fn at(&self) -> SimTime {
        match *self {
            Event::StageStart { at, .. }
            | Event::StageEnd { at, .. }
            | Event::AppCall { at, .. }
            | Event::Decision { at, .. }
            | Event::DeviceState { at, .. }
            | Event::DeviceTransition { at, .. }
            | Event::CacheRead { at, .. }
            | Event::WritebackFlush { at, .. }
            | Event::Adaptation { at, .. }
            | Event::EnergySample { at, .. }
            | Event::LinkDown { at, .. }
            | Event::LinkUp { at }
            | Event::BandwidthChange { at, .. }
            | Event::ServerDown { at, .. }
            | Event::ServerUp { at }
            | Event::RequestRetry { at, .. }
            | Event::Failover { at, .. }
            | Event::ServerPathChange { at, .. }
            | Event::ExternalDisk { at, .. }
            | Event::ProfileInjected { at, .. } => at,
        }
    }

    /// Stable snake_case tag naming the variant (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StageStart { .. } => "stage_start",
            Event::StageEnd { .. } => "stage_end",
            Event::AppCall { .. } => "app_call",
            Event::Decision { .. } => "decision",
            Event::DeviceState { .. } => "device_state",
            Event::DeviceTransition { .. } => "device_transition",
            Event::CacheRead { .. } => "cache_read",
            Event::WritebackFlush { .. } => "writeback_flush",
            Event::Adaptation { .. } => "adaptation",
            Event::EnergySample { .. } => "energy_sample",
            Event::LinkDown { .. } => "link_down",
            Event::LinkUp { .. } => "link_up",
            Event::BandwidthChange { .. } => "bandwidth_change",
            Event::ServerDown { .. } => "server_down",
            Event::ServerUp { .. } => "server_up",
            Event::RequestRetry { .. } => "request_retry",
            Event::Failover { .. } => "failover",
            Event::ServerPathChange { .. } => "server_path",
            Event::ExternalDisk { .. } => "external_disk",
            Event::ProfileInjected { .. } => "profile_injected",
        }
    }

    /// Encode as a JSON object: `t` (µs), `ev` (kind), then the
    /// variant's fields in declaration order. Deterministic — equal
    /// events encode byte-identically.
    pub fn to_json(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("t".into(), Value::UInt(self.at().as_micros())),
            ("ev".into(), Value::Str(self.kind().into())),
        ];
        let mut push = |k: &str, v: Value| obj.push((k.into(), v));
        let uint = |n: usize| Value::UInt(u64::try_from(n).unwrap_or(u64::MAX));
        match *self {
            Event::StageStart { index, .. } => {
                push("stage", uint(index));
            }
            Event::StageEnd {
                index,
                disk_energy,
                wnic_energy,
                fetched,
                ..
            } => {
                push("stage", uint(index));
                push("disk_j", Value::Float(disk_energy.get()));
                push("wnic_j", Value::Float(wnic_energy.get()));
                push("fetched_bytes", Value::UInt(fetched.get()));
            }
            Event::AppCall {
                file,
                op,
                offset,
                len,
                ..
            } => {
                push("file", Value::UInt(file));
                push("op", Value::Str(op.into()));
                push("offset", Value::UInt(offset));
                push("len", Value::UInt(len.get()));
            }
            Event::Decision {
                source,
                rationale,
                external,
                ..
            } => {
                push("source", Value::Str(source.label().into()));
                push("why", Value::Str(rationale.into()));
                push("external", Value::Bool(external));
            }
            Event::DeviceState { device, state, .. } => {
                push("dev", Value::Str(device.label().into()));
                push("state", Value::Str(state.into()));
            }
            Event::DeviceTransition {
                device,
                name,
                energy,
                ..
            } => {
                push("dev", Value::Str(device.label().into()));
                push("name", Value::Str(name.into()));
                push("energy_j", Value::Float(energy.get()));
            }
            Event::CacheRead {
                file,
                hit_pages,
                miss_pages,
                readahead_pages,
                ..
            } => {
                push("file", Value::UInt(file));
                push("hit", Value::UInt(hit_pages));
                push("miss", Value::UInt(miss_pages));
                push("ra", Value::UInt(readahead_pages));
            }
            Event::WritebackFlush { pages, .. } => {
                push("pages", Value::UInt(pages));
            }
            Event::Adaptation {
                source, trigger, ..
            } => {
                push("source", Value::Str(source.label().into()));
                push("trigger", Value::Str(trigger.into()));
            }
            Event::EnergySample {
                disk_energy,
                wnic_energy,
                flash_energy,
                ..
            } => {
                push("disk_j", Value::Float(disk_energy.get()));
                push("wnic_j", Value::Float(wnic_energy.get()));
                push("flash_j", Value::Float(flash_energy.get()));
            }
            Event::LinkDown { until, .. } | Event::ServerDown { until, .. } => {
                push("until_us", Value::UInt(until.as_micros()));
            }
            Event::LinkUp { .. } | Event::ServerUp { .. } => {}
            Event::BandwidthChange { mbps, .. } => {
                push("mbps", Value::Float(mbps));
            }
            Event::RequestRetry { attempt, wait, .. } => {
                push("attempt", Value::UInt(u64::from(attempt)));
                push("wait_us", Value::UInt(wait.as_micros()));
            }
            Event::Failover { source, reason, .. } => {
                push("source", Value::Str(source.label().into()));
                push("why", Value::Str(reason.into()));
            }
            Event::ServerPathChange { state, .. } => {
                push("state", Value::Str(state.into()));
            }
            Event::ExternalDisk { bytes, .. } => {
                push("bytes", Value::UInt(bytes.get()));
            }
            Event::ProfileInjected { mode, .. } => {
                push("mode", Value::Str(mode.into()));
            }
        }
        Value::Object(obj)
    }
}

/// A sink for simulation [`Event`]s.
///
/// The simulator consults [`Recorder::enabled`] once per run: when it
/// returns `false` no state-change logging is switched on and no events
/// are constructed, so a disabled recorder costs nothing measurable.
/// Implementations must not influence the simulation — they only
/// observe (the contract DESIGN.md §10 spells out).
///
/// ```
/// use ff_base::SimTime;
/// use ff_sim::record::{CountingRecorder, Event, Recorder};
///
/// let mut rec = CountingRecorder::new();
/// rec.record(&Event::StageStart { at: SimTime::ZERO, index: 0 });
/// assert_eq!(rec.total(), 1);
/// ```
pub trait Recorder {
    /// Receive one event (called in replay order per subsystem).
    fn record(&mut self, event: &Event);

    /// Should the simulator emit events at all? Default `true`;
    /// [`NullRecorder`] overrides to `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; the simulator skips event construction.
///
/// A run with a `NullRecorder` produces a [`crate::SimReport`] equal in
/// every field to a plain [`crate::Simulation::run`] (pinned by test).
///
/// ```
/// use ff_sim::record::{NullRecorder, Recorder};
/// assert!(!NullRecorder.enabled());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Counts events per kind without storing them — O(1) memory however
/// long the run, which is what the `benchsim` throughput runner needs.
///
/// ```
/// use ff_base::SimTime;
/// use ff_sim::record::{CountingRecorder, Event, Recorder};
///
/// let mut rec = CountingRecorder::new();
/// rec.record(&Event::StageStart { at: SimTime::ZERO, index: 0 });
/// rec.record(&Event::WritebackFlush { at: SimTime::ZERO, pages: 3 });
/// rec.record(&Event::WritebackFlush { at: SimTime::ZERO, pages: 1 });
/// assert_eq!(rec.count("writeback_flush"), 2);
/// assert_eq!(rec.total(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CountingRecorder {
    counts: BTreeMap<&'static str, u64>,
    total: u64,
}

impl CountingRecorder {
    /// Fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events seen of `kind` (an [`Event::kind`] tag).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All per-kind counters, ordered by kind tag.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }
}

impl Recorder for CountingRecorder {
    fn record(&mut self, event: &Event) {
        *self.counts.entry(event.kind()).or_insert(0) += 1;
        self.total += 1;
    }
}

/// Stores every event for post-run inspection and JSONL export.
///
/// Events arrive in replay order per subsystem but device drains can
/// trail the call that caused them, so [`EventLog::to_jsonl`] stably
/// sorts by timestamp before serialising — equal-time events keep
/// their arrival order, which makes the output deterministic.
///
/// ```
/// use ff_base::SimTime;
/// use ff_sim::record::{Event, EventLog, Recorder};
///
/// let mut log = EventLog::new();
/// log.record(&Event::WritebackFlush { at: SimTime::from_secs(5), pages: 2 });
/// log.record(&Event::StageStart { at: SimTime::ZERO, index: 0 });
/// let jsonl = log.to_jsonl();
/// let first = jsonl.lines().next().unwrap();
/// assert!(first.contains("stage_start"), "sorted by time: {first}");
/// assert_eq!(log.count("writeback_flush"), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far, in arrival order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of `kind` recorded so far.
    pub fn count(&self, kind: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind() == kind)
            .fold(0u64, |n, _| n + 1)
    }

    /// Per-kind totals, ordered by kind tag (matches what a
    /// [`CountingRecorder`] fed the same run would hold).
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for e in &self.events {
            *m.entry(e.kind()).or_insert(0u64) += 1;
        }
        m
    }

    /// Serialise as JSON Lines: one compact object per event, stably
    /// sorted by simulated timestamp, trailing newline included.
    pub fn to_jsonl(&self) -> String {
        let mut sorted: Vec<&Event> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.at());
        let mut out = String::new();
        for e in sorted {
            out.push_str(&e.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

impl Recorder for EventLog {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_timestamps_are_consistent() {
        let evs = [
            Event::StageStart {
                at: SimTime::from_secs(1),
                index: 0,
            },
            Event::Decision {
                at: SimTime::from_secs(2),
                source: Source::Wnic,
                rationale: "policy",
                external: false,
            },
            Event::DeviceTransition {
                at: SimTime::from_secs(3),
                device: Device::Disk,
                name: "spin_up",
                energy: Joules(5.28),
            },
        ];
        for (ev, kind) in evs
            .iter()
            .zip(["stage_start", "decision", "device_transition"])
        {
            assert_eq!(ev.kind(), kind);
            let json = ev.to_json();
            assert_eq!(json.get("ev").and_then(|v| v.as_str()), Some(kind));
            assert_eq!(
                json.get("t").and_then(|v| v.as_u64()),
                Some(ev.at().as_micros())
            );
        }
    }

    #[test]
    fn jsonl_is_time_sorted_and_stable() {
        let mut log = EventLog::new();
        // Two equal-time events must keep arrival order.
        log.record(&Event::StageEnd {
            at: SimTime::from_secs(40),
            index: 0,
            disk_energy: Joules(1.0),
            wnic_energy: Joules(2.0),
            fetched: Bytes(4096),
        });
        log.record(&Event::StageStart {
            at: SimTime::from_secs(40),
            index: 1,
        });
        log.record(&Event::StageStart {
            at: SimTime::ZERO,
            index: 0,
        });
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""t":0"#));
        assert!(lines[1].contains("stage_end"), "stable: {}", lines[1]);
        assert!(lines[2].contains("stage_start"));
    }

    #[test]
    fn counting_matches_event_log() {
        let evs = [
            Event::WritebackFlush {
                at: SimTime::ZERO,
                pages: 1,
            },
            Event::WritebackFlush {
                at: SimTime::from_secs(5),
                pages: 2,
            },
            Event::EnergySample {
                at: SimTime::from_secs(40),
                disk_energy: Joules(1.0),
                wnic_energy: Joules(0.5),
                flash_energy: Joules::ZERO,
            },
        ];
        let mut count = CountingRecorder::new();
        let mut log = EventLog::new();
        for e in &evs {
            count.record(e);
            log.record(e);
        }
        assert_eq!(count.total(), log.len() as u64);
        assert_eq!(&log.counts(), count.counts());
    }

    #[test]
    fn null_recorder_reports_disabled() {
        let mut n = NullRecorder;
        assert!(!n.enabled());
        n.record(&Event::StageStart {
            at: SimTime::ZERO,
            index: 0,
        });
    }

    #[test]
    fn fault_events_encode_their_fields() {
        let cases: Vec<(Event, &str, &str)> = vec![
            (
                Event::LinkDown {
                    at: SimTime::from_secs(10),
                    until: SimTime::from_secs(15),
                },
                "link_down",
                r#""until_us":15000000"#,
            ),
            (
                Event::LinkUp {
                    at: SimTime::from_secs(15),
                },
                "link_up",
                r#""ev":"link_up""#,
            ),
            (
                Event::BandwidthChange {
                    at: SimTime::from_secs(20),
                    mbps: 2.0,
                },
                "bandwidth_change",
                r#""mbps":2"#,
            ),
            (
                Event::ServerDown {
                    at: SimTime::from_secs(30),
                    until: SimTime::from_secs(42),
                },
                "server_down",
                r#""until_us":42000000"#,
            ),
            (
                Event::ServerUp {
                    at: SimTime::from_secs(42),
                },
                "server_up",
                r#""ev":"server_up""#,
            ),
            (
                Event::RequestRetry {
                    at: SimTime::from_secs(31),
                    attempt: 2,
                    wait: Dur::from_millis(1000),
                },
                "request_retry",
                r#""attempt":2,"wait_us":1000000"#,
            ),
            (
                Event::Failover {
                    at: SimTime::from_secs(33),
                    source: Source::Disk,
                    reason: "server-timeout",
                },
                "failover",
                r#""source":"disk","why":"server-timeout""#,
            ),
            (
                Event::ServerPathChange {
                    at: SimTime::from_secs(33),
                    state: "dead",
                },
                "server_path",
                r#""state":"dead""#,
            ),
            (
                Event::ExternalDisk {
                    at: SimTime::from_secs(50),
                    bytes: Bytes(65_536),
                },
                "external_disk",
                r#""bytes":65536"#,
            ),
            (
                Event::ProfileInjected {
                    at: SimTime::from_secs(60),
                    mode: "corrupt",
                },
                "profile_injected",
                r#""mode":"corrupt""#,
            ),
        ];
        for (ev, kind, needle) in cases {
            assert_eq!(ev.kind(), kind);
            let text = ev.to_json().to_compact();
            assert!(text.contains(needle), "{kind}: {text}");
            assert_eq!(Value::parse(&text).expect("valid JSON"), ev.to_json());
        }
    }

    #[test]
    fn event_json_round_trips_through_the_parser() {
        let ev = Event::CacheRead {
            at: SimTime::from_secs(7),
            file: 3,
            hit_pages: 4,
            miss_pages: 1,
            readahead_pages: 8,
        };
        let text = ev.to_json().to_compact();
        let parsed = Value::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("ra").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(parsed, ev.to_json());
    }
}
